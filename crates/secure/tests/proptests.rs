//! Property-based tests for the secure-memory layer: layout invariants and
//! access-expansion conservation laws.

use proptest::prelude::*;
use synergy_cache::{CacheConfig, SetAssocCache};
use synergy_dram::{AccessKind, RequestClass};
use synergy_secure::layout::{CounterOrg, MetadataLayout, Region, TreeLeaves, LINE};
use synergy_secure::{DesignConfig, SecureEngine};

fn layout_strategy() -> impl Strategy<Value = MetadataLayout> {
    (12u32..26, prop_oneof![Just(CounterOrg::Monolithic), Just(CounterOrg::Split)]).prop_map(
        |(log2, org)| MetadataLayout::new(1u64 << log2, org, TreeLeaves::CounterLines),
    )
}

proptest! {
    /// Every data address maps into the correct region, and its metadata
    /// addresses classify as their own regions.
    #[test]
    fn layout_regions_consistent(layout in layout_strategy(), frac in 0.0f64..1.0) {
        let lines = layout.data_bytes() / LINE;
        let addr = ((lines as f64 * frac) as u64).min(lines - 1) * LINE;
        prop_assert_eq!(layout.classify(addr), Region::Data);
        prop_assert_eq!(layout.classify(layout.counter_line_addr(addr)), Region::Counter);
        prop_assert_eq!(layout.classify(layout.mac_line_addr(addr)), Region::Mac);
        prop_assert_eq!(layout.classify(layout.parity_line_addr(addr)), Region::Parity);
        for (level, node) in layout.tree_path(layout.counter_line_addr(addr)).iter().enumerate() {
            prop_assert_eq!(layout.classify(*node), Region::Tree(level));
        }
    }

    /// Addresses within one counter group share all metadata lines; the
    /// slot function is a bijection within the group.
    #[test]
    fn layout_grouping(layout in layout_strategy(), frac in 0.0f64..1.0) {
        let per = layout.counter_org().counters_per_line();
        let groups = layout.data_bytes() / LINE / per;
        let group = ((groups as f64 * frac) as u64).min(groups - 1);
        let base = group * per * LINE;
        let ctr = layout.counter_line_addr(base);
        let mut seen = std::collections::HashSet::new();
        for i in 0..per {
            let a = base + i * LINE;
            prop_assert_eq!(layout.counter_line_addr(a), ctr);
            prop_assert!(seen.insert(layout.counter_slot(a)));
        }
    }

    /// The tree path is strictly level-ascending and shared prefixes
    /// converge monotonically: once two leaves' paths meet, they never
    /// diverge again.
    #[test]
    fn tree_paths_converge_monotonically(
        layout in layout_strategy(),
        fa in 0.0f64..1.0,
        fb in 0.0f64..1.0,
    ) {
        let lines = layout.data_bytes() / LINE;
        let a = layout.counter_line_addr(((lines as f64 * fa) as u64).min(lines - 1) * LINE);
        let b = layout.counter_line_addr(((lines as f64 * fb) as u64).min(lines - 1) * LINE);
        let pa = layout.tree_path(a);
        let pb = layout.tree_path(b);
        prop_assert_eq!(pa.len(), pb.len());
        let mut met = false;
        for (x, y) in pa.iter().zip(pb.iter()) {
            if met {
                prop_assert_eq!(x, y, "paths diverged after meeting");
            }
            if x == y {
                met = true;
            }
        }
    }

    /// Expansion conservation: a read expansion contains exactly one data
    /// read; Synergy expansions never contain MAC accesses; non-secure
    /// expansions contain nothing else at all.
    #[test]
    fn expansion_invariants(addrs in proptest::collection::vec(0u64..(1 << 24), 1..50)) {
        let mut llc = SetAssocCache::new(CacheConfig::new(1 << 20, 8, 64).unwrap());
        let mut syn = SecureEngine::new(DesignConfig::synergy(), 1 << 26);
        let mut ns = SecureEngine::new(DesignConfig::non_secure(), 1 << 26);
        let mut llc2 = SetAssocCache::new(CacheConfig::new(1 << 20, 8, 64).unwrap());
        for addr in addrs {
            let addr = addr & !63;
            let e = syn.expand_read(addr, &mut llc);
            let data_reads = e
                .accesses
                .iter()
                .filter(|a| a.class == RequestClass::Data && a.kind == AccessKind::Read)
                .count();
            prop_assert_eq!(data_reads, 1);
            prop_assert!(e.accesses.iter().all(|a| a.class != RequestClass::Mac));

            let e = ns.expand_read(addr, &mut llc2);
            prop_assert_eq!(e.accesses.len(), 1);

            let w = syn.expand_writeback(addr, &mut llc);
            let parity_writes = w
                .accesses
                .iter()
                .filter(|a| a.class == RequestClass::Parity && a.kind == AccessKind::Write)
                .count();
            prop_assert_eq!(parity_writes, 1, "Synergy pays exactly one parity write");
        }
    }

    /// Region boundaries round-trip through `classify` exactly: each
    /// region's base and last line classify as that region, the line just
    /// below each base classifies as the preceding region, and the first
    /// line past the layout is `OutOfRange` — the address the engine's
    /// `class_of` debug-assertion exists to catch.
    #[test]
    fn region_boundaries_round_trip(layout in layout_strategy()) {
        let mac_base = layout.counter_base() + layout.counter_lines() * LINE;

        prop_assert_eq!(layout.classify(0), Region::Data);
        prop_assert_eq!(layout.classify(layout.data_bytes() - LINE), Region::Data);
        prop_assert_eq!(layout.counter_base(), layout.data_bytes());
        prop_assert_eq!(layout.classify(layout.counter_base()), Region::Counter);
        prop_assert_eq!(layout.classify(mac_base - LINE), Region::Counter);
        prop_assert_eq!(layout.classify(mac_base), Region::Mac);
        prop_assert_eq!(layout.classify(layout.parity_base() - LINE), Region::Mac);
        prop_assert_eq!(layout.classify(layout.parity_base()), Region::Parity);

        let mut prev_end = None;
        for level in 0..layout.tree_depth() {
            let base = layout.tree_level_base(level);
            let nodes = layout.tree_level_nodes(level);
            prop_assert_eq!(layout.classify(base), Region::Tree(level));
            prop_assert_eq!(layout.classify(base + (nodes - 1) * LINE), Region::Tree(level));
            prop_assert_eq!(
                layout.classify(base - LINE),
                if level == 0 { Region::Parity } else { Region::Tree(level - 1) },
                "tree levels must be contiguous after parity"
            );
            prev_end = Some(base + nodes * LINE);
        }
        if let Some(end) = prev_end {
            prop_assert_eq!(end, layout.total_bytes());
        }
        prop_assert_eq!(layout.classify(layout.total_bytes()), Region::OutOfRange);
        prop_assert_eq!(layout.classify(layout.total_bytes() + LINE), Region::OutOfRange);
    }

    /// Counter-writeback conservation: every counter-line increment is
    /// written back to DRAM exactly once — never lost in a cache, never
    /// duplicated across the dedicated cache and the LLC. Deliberately
    /// tiny caches force constant evictions and dual residency, covering
    /// the clean-fill + dirty-increment miss path and the
    /// dedicated-promotion-of-a-dirty-LLC-line path.
    #[test]
    fn counter_writebacks_conserve_increments(
        ops in proptest::collection::vec((0u64..(1 << 22), any::<bool>()), 1..120),
    ) {
        let presets = [
            DesignConfig::sgx(),
            DesignConfig::sgx_o(),
            DesignConfig::synergy(),
            DesignConfig::ivec(),
            DesignConfig::lot_ecc(true),
        ];
        for design in presets {
            let name = design.name;
            let mut llc = SetAssocCache::new(CacheConfig::new(8 << 10, 2, 64).unwrap());
            let mut engine = SecureEngine::with_metadata_cache(
                design,
                1 << 26,
                CacheConfig::new(1 << 10, 2, 64).unwrap(),
            );
            // Logically-dirty counter lines: incremented but not yet in DRAM.
            let mut dirty = std::collections::HashSet::new();
            for &(addr, is_write) in &ops {
                let addr = addr & !63;
                let exp = if is_write {
                    let ctr = engine.layout().counter_line_addr(addr);
                    let exp = engine.expand_writeback(addr, &mut llc);
                    dirty.insert(ctr);
                    exp
                } else {
                    engine.expand_read(addr, &mut llc)
                };
                for a in &exp.accesses {
                    if a.class == RequestClass::Counter && a.kind == AccessKind::Write {
                        prop_assert!(
                            dirty.remove(&a.addr),
                            "{}: counter line {:#x} written back while logically \
                             clean — a lost or duplicated increment",
                            name,
                            a.addr
                        );
                    }
                }
            }
            // Flush: whatever is still dirty in either cache must be
            // exactly the remaining logically-dirty set.
            let mut resident = engine.drain_dirty_metadata();
            resident.extend(llc.drain_dirty());
            for addr in resident {
                if engine.layout().classify(addr) == Region::Counter {
                    prop_assert!(
                        dirty.remove(&addr),
                        "{}: cache holds dirty counter {:#x} that was never incremented \
                         (or was already written back)",
                        name,
                        addr
                    );
                }
            }
            prop_assert!(
                dirty.is_empty(),
                "{}: increments lost — dirty bits stranded for {:x?}",
                name,
                dirty
            );
        }
    }

    /// Warm counter lines stop generating counter traffic: expanding the
    /// same read twice in a row, the second expansion is data-only for
    /// Synergy.
    #[test]
    fn warm_reads_are_data_only(addr in 0u64..(1 << 24)) {
        let addr = addr & !63;
        let mut llc = SetAssocCache::new(CacheConfig::new(1 << 20, 8, 64).unwrap());
        let mut e = SecureEngine::new(DesignConfig::synergy(), 1 << 26);
        let _ = e.expand_read(addr, &mut llc);
        let again = e.expand_read(addr, &mut llc);
        prop_assert_eq!(again.accesses.len(), 1);
        prop_assert_eq!(again.accesses[0].class, RequestClass::Data);
    }
}
