//! Property-based tests for the ECC substrate.

use proptest::prelude::*;
use synergy_ecc::parity::{self, ParityLine};
use synergy_ecc::reed_solomon::ReedSolomon;
use synergy_ecc::secded::Codeword;
use synergy_ecc::DecodeOutcome;

proptest! {
    /// Every word encodes to a codeword that decodes clean to itself.
    #[test]
    fn secded_roundtrip(data in any::<u64>()) {
        let (decoded, outcome) = Codeword::encode(data).decode();
        prop_assert_eq!(decoded, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Clean);
    }

    /// Any single-bit error in any codeword is corrected.
    #[test]
    fn secded_corrects_single_bit(data in any::<u64>(), pos in 0usize..72) {
        let (decoded, outcome) = Codeword::encode(data).with_bit_flipped(pos).decode();
        prop_assert_eq!(decoded, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    /// Any double-bit error is detected, never miscorrected.
    #[test]
    fn secded_detects_double_bits(data in any::<u64>(), a in 0usize..72, b in 0usize..72) {
        prop_assume!(a != b);
        let (decoded, outcome) =
            Codeword::encode(data).with_bit_flipped(a).with_bit_flipped(b).decode();
        prop_assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
        prop_assert_eq!(decoded, None);
    }

    /// Reed–Solomon corrects any single symbol error at any position and
    /// magnitude, for arbitrary data.
    #[test]
    fn rs_corrects_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        magnitude in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(16, 2).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[pos] ^= magnitude;
        let report = rs.correct(&mut cw).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// A wider RS code corrects any two symbol errors.
    #[test]
    fn rs_corrects_double_symbol(
        data in proptest::collection::vec(any::<u8>(), 12),
        a in 0usize..16,
        b in 0usize..16,
        ma in 1u8..=255,
        mb in 1u8..=255,
    ) {
        prop_assume!(a != b);
        let rs = ReedSolomon::new(12, 4).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[a] ^= ma;
        cw[b] ^= mb;
        let report = rs.correct(&mut cw).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// Erasure decoding repairs any two known-bad symbols with only two
    /// check symbols.
    #[test]
    fn rs_erasures(
        data in proptest::collection::vec(any::<u8>(), 16),
        a in 0usize..18,
        b in 0usize..18,
        garbage in any::<[u8; 2]>(),
    ) {
        prop_assume!(a != b);
        let rs = ReedSolomon::new(16, 2).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[a] = garbage[0];
        cw[b] = garbage[1];
        let report = rs.correct_with_erasures(&mut cw, &[a, b]).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// RAID-3 reconstruction recovers any chip from the other eight plus
    /// the parity, regardless of what the failed chip currently holds.
    #[test]
    fn parity_reconstructs_any_chip(
        slices in any::<[[u8; 8]; 9]>(),
        failed in 0usize..9,
        garbage in any::<[u8; 8]>(),
    ) {
        let p = parity::compute(&slices);
        let mut corrupted = slices;
        corrupted[failed] = garbage;
        prop_assert_eq!(parity::reconstruct(&corrupted, &p, failed), slices[failed]);
    }

    /// The parity-of-parities reconstructs any parity slot.
    #[test]
    fn parity_line_reconstructs_any_slot(slots in any::<[[u8; 8]; 8]>(), failed in 0usize..8) {
        let line = ParityLine::new(slots);
        prop_assert!(line.is_consistent());
        prop_assert_eq!(line.reconstruct_parity(failed), slots[failed]);
    }
}
