//! Property-based tests for the ECC substrate.

use proptest::prelude::*;
use synergy_ecc::parity::{self, ParityLine};
use synergy_ecc::reed_solomon::{Chipkill, ReedSolomon};
use synergy_ecc::secded::Codeword;
use synergy_ecc::DecodeOutcome;

proptest! {
    /// Every word encodes to a codeword that decodes clean to itself.
    #[test]
    fn secded_roundtrip(data in any::<u64>()) {
        let (decoded, outcome) = Codeword::encode(data).decode();
        prop_assert_eq!(decoded, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Clean);
    }

    /// Any single-bit error in any codeword is corrected.
    #[test]
    fn secded_corrects_single_bit(data in any::<u64>(), pos in 0usize..72) {
        let (decoded, outcome) = Codeword::encode(data).with_bit_flipped(pos).decode();
        prop_assert_eq!(decoded, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    /// Any double-bit error is detected, never miscorrected.
    #[test]
    fn secded_detects_double_bits(data in any::<u64>(), a in 0usize..72, b in 0usize..72) {
        prop_assume!(a != b);
        let (decoded, outcome) =
            Codeword::encode(data).with_bit_flipped(a).with_bit_flipped(b).decode();
        prop_assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
        prop_assert_eq!(decoded, None);
    }

    /// Reed–Solomon corrects any single symbol error at any position and
    /// magnitude, for arbitrary data.
    #[test]
    fn rs_corrects_single_symbol(
        data in proptest::collection::vec(any::<u8>(), 16),
        pos in 0usize..18,
        magnitude in 1u8..=255,
    ) {
        let rs = ReedSolomon::new(16, 2).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[pos] ^= magnitude;
        let report = rs.correct(&mut cw).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// A wider RS code corrects any two symbol errors.
    #[test]
    fn rs_corrects_double_symbol(
        data in proptest::collection::vec(any::<u8>(), 12),
        a in 0usize..16,
        b in 0usize..16,
        ma in 1u8..=255,
        mb in 1u8..=255,
    ) {
        prop_assume!(a != b);
        let rs = ReedSolomon::new(12, 4).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[a] ^= ma;
        cw[b] ^= mb;
        let report = rs.correct(&mut cw).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// Erasure decoding repairs any two known-bad symbols with only two
    /// check symbols.
    #[test]
    fn rs_erasures(
        data in proptest::collection::vec(any::<u8>(), 16),
        a in 0usize..18,
        b in 0usize..18,
        garbage in any::<[u8; 2]>(),
    ) {
        prop_assume!(a != b);
        let rs = ReedSolomon::new(16, 2).expect("valid geometry");
        let clean = rs.encode_codeword(&data).expect("encode");
        let mut cw = clean.clone();
        cw[a] = garbage[0];
        cw[b] = garbage[1];
        let report = rs.correct_with_erasures(&mut cw, &[a, b]).expect("well-formed call");
        prop_assert_eq!(report.outcome, DecodeOutcome::Corrected);
        prop_assert_eq!(cw, clean);
    }

    /// RAID-3 reconstruction recovers any chip from the other eight plus
    /// the parity, regardless of what the failed chip currently holds.
    #[test]
    fn parity_reconstructs_any_chip(
        slices in any::<[[u8; 8]; 9]>(),
        failed in 0usize..9,
        garbage in any::<[u8; 8]>(),
    ) {
        let p = parity::compute(&slices);
        let mut corrupted = slices;
        corrupted[failed] = garbage;
        prop_assert_eq!(parity::reconstruct(&corrupted, &p, failed), slices[failed]);
    }

    /// The parity-of-parities reconstructs any parity slot.
    #[test]
    fn parity_line_reconstructs_any_slot(slots in any::<[[u8; 8]; 8]>(), failed in 0usize..8) {
        let line = ParityLine::new(slots);
        prop_assert!(line.is_consistent());
        prop_assert_eq!(line.reconstruct_parity(failed), slots[failed]);
    }

    /// Chipkill corrects any single-symbol corruption — any chip, any beat,
    /// any nonzero magnitude — on a random cacheline.
    #[test]
    fn chipkill_corrects_any_single_symbol(
        data in any::<[u8; 64]>(),
        beat in 0usize..Chipkill::BEATS,
        chip in 0usize..Chipkill::TOTAL_CHIPS,
        magnitude in 1u8..=255,
    ) {
        let ck = Chipkill::new().expect("fixed geometry");
        let mut beats = ck.encode_line(&data).expect("encode");
        beats[beat][chip] ^= magnitude;
        let (line, outcome) = ck.correct_line(&mut beats).expect("well-formed");
        prop_assert_eq!(line, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    /// A whole failed chip (one bad symbol in every beat) is still a
    /// single-symbol error per codeword, so the full line is recovered.
    #[test]
    fn chipkill_corrects_any_single_chip_failure(
        data in any::<[u8; 64]>(),
        chip in 0usize..Chipkill::TOTAL_CHIPS,
        magnitudes in any::<[u8; 4]>(),
    ) {
        prop_assume!(magnitudes.iter().any(|&m| m != 0));
        let ck = Chipkill::new().expect("fixed geometry");
        let mut beats = ck.encode_line(&data).expect("encode");
        for (beat, &m) in beats.iter_mut().zip(&magnitudes) {
            beat[chip] ^= m;
        }
        let (line, outcome) = ck.correct_line(&mut beats).expect("well-formed");
        prop_assert_eq!(line, Some(data));
        prop_assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    /// Two-symbol corruptions (two chips hit in the same beat) are never
    /// silently accepted: a weight-2 error sits below the code's minimum
    /// distance, so the corrupted word is never itself a valid codeword and
    /// the decode is never `Clean`. The bounded-distance decoder either
    /// flags the beat (no line returned) or miscorrects onto a *different*
    /// codeword — observably wrong data, caught by any integrity layer
    /// above (SYNERGY's MAC), never the original data passed off as clean.
    #[test]
    fn chipkill_never_silently_accepts_double_symbol(
        data in any::<[u8; 64]>(),
        beat in 0usize..Chipkill::BEATS,
        a in 0usize..Chipkill::TOTAL_CHIPS,
        b in 0usize..Chipkill::TOTAL_CHIPS,
        ma in 1u8..=255,
        mb in 1u8..=255,
    ) {
        prop_assume!(a != b);
        let ck = Chipkill::new().expect("fixed geometry");
        let mut beats = ck.encode_line(&data).expect("encode");
        beats[beat][a] ^= ma;
        beats[beat][b] ^= mb;
        let (line, outcome) = ck.correct_line(&mut beats).expect("well-formed");
        prop_assert_ne!(outcome, DecodeOutcome::Clean);
        match line {
            None => prop_assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable),
            Some(l) => {
                prop_assert_eq!(outcome, DecodeOutcome::Corrected);
                prop_assert_ne!(l, data, "miscorrection must not alias to the original line");
            }
        }
    }
}
