//! Reed–Solomon codes over GF(2^8) — the substrate of commercial Chipkill.
//!
//! Chipkill-correct memory \[11\] stripes each beat of a memory transfer
//! across many DRAM chips, one field symbol per chip, and adds check
//! symbols so that the failure of *any one whole chip* is a single-symbol
//! error the code corrects. With x8 devices this requires ganging two
//! ECC-DIMMs (18 chips) in lock-step across two channels — the
//! bandwidth-halving cost that motivates SYNERGY (Figure 1(b)).
//!
//! [`ReedSolomon`] is a general systematic RS encoder/decoder (any data and
//! parity length with `n ≤ 255`), with Berlekamp–Massey error location and
//! syndrome-solving magnitude recovery. [`Chipkill`] specializes it to the
//! 18-chip, 2-check-symbol organization the paper compares against.

use crate::gf256 as gf;
use crate::DecodeOutcome;

/// Errors reported by the Reed–Solomon APIs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Requested code parameters exceed the field (n > 255) or are empty.
    InvalidParameters {
        /// Requested number of data symbols.
        data_len: usize,
        /// Requested number of parity symbols.
        parity_len: usize,
    },
    /// Input slice length does not match the code's expectation.
    LengthMismatch {
        /// Expected number of symbols.
        expected: usize,
        /// Provided number of symbols.
        actual: usize,
    },
}

impl core::fmt::Display for RsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RsError::InvalidParameters { data_len, parity_len } => write!(
                f,
                "invalid reed-solomon parameters: {data_len} data + {parity_len} parity symbols"
            ),
            RsError::LengthMismatch { expected, actual } => {
                write!(f, "expected {expected} symbols, got {actual}")
            }
        }
    }
}

impl std::error::Error for RsError {}

/// Report of a successful correction pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionReport {
    /// Outcome classification (clean / corrected / uncorrectable).
    pub outcome: DecodeOutcome,
    /// Codeword indices that were repaired (empty when clean).
    pub corrected_positions: Vec<usize>,
}

/// A systematic Reed–Solomon code over GF(2^8).
///
/// Codewords are laid out `data || parity` with index 0 the
/// highest-degree coefficient.
///
/// ```
/// use synergy_ecc::reed_solomon::ReedSolomon;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rs = ReedSolomon::new(16, 2)?; // the x8-Chipkill geometry
/// let data: Vec<u8> = (0..16).collect();
/// let mut cw = rs.encode_codeword(&data)?;
///
/// cw[5] ^= 0xFF; // an entire chip's symbol goes bad
/// let report = rs.correct(&mut cw)?;
/// assert_eq!(&cw[..16], &data[..]);
/// assert_eq!(report.corrected_positions, vec![5]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data_len: usize,
    parity_len: usize,
    /// Generator polynomial, descending coefficient order, monic.
    gen: Vec<u8>,
    /// Per-generator-coefficient multiplication rows (`gen[k+1] · x`),
    /// turning the encode inner loop into one load per parity symbol.
    enc_rows: Vec<[u8; 256]>,
    /// Per-syndrome-index multiplication rows (`α^j · x`) for the Horner
    /// step of syndrome evaluation.
    synd_rows: Vec<[u8; 256]>,
}

impl ReedSolomon {
    /// Constructs a code with `data_len` data and `parity_len` check symbols.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParameters`] when either length is zero or
    /// the codeword would exceed the 255-symbol field bound.
    pub fn new(data_len: usize, parity_len: usize) -> Result<Self, RsError> {
        if data_len == 0 || parity_len == 0 || data_len + parity_len > 255 {
            return Err(RsError::InvalidParameters { data_len, parity_len });
        }
        // g(x) = Π_{i=0}^{parity_len-1} (x - α^i)
        let mut gen = vec![1u8];
        for i in 0..parity_len {
            gen = poly_mul(&gen, &[1, gf::alpha_pow(i)]);
        }
        let enc_rows = gen[1..].iter().map(|&g| gf::mul_row(g)).collect();
        let synd_rows = (0..parity_len)
            .map(|j| gf::mul_row(gf::alpha_pow(j)))
            .collect();
        Ok(Self { data_len, parity_len, gen, enc_rows, synd_rows })
    }

    /// Number of data symbols per codeword.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of parity symbols per codeword.
    pub fn parity_len(&self) -> usize {
        self.parity_len
    }

    /// Total codeword length.
    pub fn codeword_len(&self) -> usize {
        self.data_len + self.parity_len
    }

    /// The generator polynomial `g(x) = Π (x - α^i)`, descending
    /// coefficient order, monic (`parity_len + 1` coefficients).
    pub fn generator(&self) -> &[u8] {
        &self.gen
    }

    /// Maximum number of unknown-position symbol errors the code corrects.
    pub fn correctable_errors(&self) -> usize {
        self.parity_len / 2
    }

    /// Computes the parity symbols for `data`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data` is not `data_len` long.
    pub fn encode(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        if data.len() != self.data_len {
            return Err(RsError::LengthMismatch { expected: self.data_len, actual: data.len() });
        }
        // Synthetic division of data·x^parity_len by the generator. Each
        // step multiplies every generator coefficient by the same `coef`,
        // so the precomputed per-coefficient rows make the inner loop a
        // single indexed load per parity symbol.
        let mut rem = vec![0u8; self.parity_len];
        for &d in data {
            let coef = d ^ rem[0];
            rem.rotate_left(1);
            *rem.last_mut().unwrap() = 0;
            if coef != 0 {
                for (r, row) in rem.iter_mut().zip(self.enc_rows.iter()) {
                    *r ^= row[coef as usize];
                }
            }
        }
        Ok(rem)
    }

    /// Encodes `data` into a full `data || parity` codeword.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `data` is not `data_len` long.
    pub fn encode_codeword(&self, data: &[u8]) -> Result<Vec<u8>, RsError> {
        let parity = self.encode(data)?;
        let mut cw = Vec::with_capacity(self.codeword_len());
        cw.extend_from_slice(data);
        cw.extend_from_slice(&parity);
        Ok(cw)
    }

    /// Computes the syndrome vector `S_j = c(α^j)` — Horner evaluation with
    /// the per-`α^j` multiplication row doing the fold step.
    fn syndromes(&self, codeword: &[u8]) -> Vec<u8> {
        self.synd_rows
            .iter()
            .map(|row| {
                codeword
                    .iter()
                    .fold(0u8, |acc, &c| row[acc as usize] ^ c)
            })
            .collect()
    }

    /// Detects and corrects up to `parity_len / 2` symbol errors in place.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] if `codeword` has the wrong
    /// length. An uncorrectable pattern is *not* an `Err`: it is reported as
    /// [`DecodeOutcome::DetectedUncorrectable`] so callers can distinguish
    /// API misuse from data loss.
    pub fn correct(&self, codeword: &mut [u8]) -> Result<CorrectionReport, RsError> {
        self.correct_with_erasures(codeword, &[])
    }

    /// Corrects with prior knowledge that the symbols at `erasures`
    /// (codeword indices) may be wrong — e.g. a chip already identified as
    /// failed. Erasures cost one check symbol each instead of two, so a
    /// 2-parity code can repair up to 2 known-bad chips.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] for a wrong-length codeword or an
    /// out-of-range erasure index.
    pub fn correct_with_erasures(
        &self,
        codeword: &mut [u8],
        erasures: &[usize],
    ) -> Result<CorrectionReport, RsError> {
        let n = self.codeword_len();
        if codeword.len() != n {
            return Err(RsError::LengthMismatch { expected: n, actual: codeword.len() });
        }
        for &e in erasures {
            if e >= n {
                return Err(RsError::LengthMismatch { expected: n, actual: e });
            }
        }

        let synd = self.syndromes(codeword);
        if synd.iter().all(|&s| s == 0) {
            return Ok(CorrectionReport {
                outcome: DecodeOutcome::Clean,
                corrected_positions: Vec::new(),
            });
        }

        // Candidate error coefficient-positions: erasures first, then
        // Berlekamp–Massey for the unknown ones.
        let erasure_coefs: Vec<usize> = erasures.iter().map(|&i| n - 1 - i).collect();
        let coef_positions = if erasures.is_empty() {
            match self.locate_errors(&synd, n) {
                Some(p) => p,
                None => {
                    return Ok(CorrectionReport {
                        outcome: DecodeOutcome::DetectedUncorrectable,
                        corrected_positions: Vec::new(),
                    })
                }
            }
        } else {
            erasure_coefs
        };

        if coef_positions.is_empty() || coef_positions.len() > self.parity_len {
            return Ok(CorrectionReport {
                outcome: DecodeOutcome::DetectedUncorrectable,
                corrected_positions: Vec::new(),
            });
        }

        // Solve S_j = Σ_i v_i · α^(j·p_i) for the magnitudes v_i using the
        // first t syndrome equations (Gaussian elimination over GF(2^8)).
        let magnitudes = match solve_magnitudes(&synd, &coef_positions) {
            Some(m) => m,
            None => {
                return Ok(CorrectionReport {
                    outcome: DecodeOutcome::DetectedUncorrectable,
                    corrected_positions: Vec::new(),
                })
            }
        };

        let mut corrected_positions = Vec::new();
        for (&p, &v) in coef_positions.iter().zip(magnitudes.iter()) {
            if v != 0 {
                codeword[n - 1 - p] ^= v;
                corrected_positions.push(n - 1 - p);
            }
        }
        corrected_positions.sort_unstable();

        // A decode is only trustworthy if the repaired word is a codeword.
        if self.syndromes(codeword).iter().any(|&s| s != 0) {
            // Roll back to avoid handing back a half-patched buffer.
            for (&p, &v) in coef_positions.iter().zip(magnitudes.iter()) {
                codeword[n - 1 - p] ^= v;
            }
            return Ok(CorrectionReport {
                outcome: DecodeOutcome::DetectedUncorrectable,
                corrected_positions: Vec::new(),
            });
        }

        Ok(CorrectionReport { outcome: DecodeOutcome::Corrected, corrected_positions })
    }

    /// Berlekamp–Massey + Chien search: returns error coefficient-positions,
    /// or `None` when the locator is inconsistent (too many errors).
    fn locate_errors(&self, synd: &[u8], n: usize) -> Option<Vec<usize>> {
        // Berlekamp–Massey, ascending coefficient order, Λ[0] = 1.
        let mut lambda = vec![1u8];
        let mut prev = vec![1u8];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u8;
        for i in 0..synd.len() {
            let mut delta = synd[i];
            for j in 1..=l.min(lambda.len() - 1) {
                delta ^= gf::mul(lambda[j], synd[i - j]);
            }
            if delta == 0 {
                m += 1;
            } else if 2 * l <= i {
                let t = lambda.clone();
                lambda = poly_sub_scaled_shifted(&lambda, &prev, gf::div(delta, b), m);
                l = i + 1 - l;
                prev = t;
                b = delta;
                m = 1;
            } else {
                lambda = poly_sub_scaled_shifted(&lambda, &prev, gf::div(delta, b), m);
                m += 1;
            }
        }
        if l > self.correctable_errors() {
            return None;
        }
        // Chien search: coefficient position p is in error iff Λ(α^{-p}) = 0.
        let mut positions = Vec::new();
        for p in 0..n {
            let x = gf::alpha_pow((255 - (p % 255)) % 255);
            if poly_eval_ascending(&lambda, x) == 0 {
                positions.push(p);
            }
        }
        if positions.len() == l {
            Some(positions)
        } else {
            None
        }
    }
}

/// Gaussian elimination over GF(2^8): solve `A v = S` where
/// `A[j][i] = α^(j·p_i)` for the first `t` syndromes.
fn solve_magnitudes(synd: &[u8], coef_positions: &[usize]) -> Option<Vec<u8>> {
    let t = coef_positions.len();
    let mut a: Vec<Vec<u8>> = (0..t)
        .map(|j| {
            coef_positions
                .iter()
                .map(|&p| gf::alpha_pow(j * p % 255))
                .collect()
        })
        .collect();
    let mut s: Vec<u8> = synd[..t].to_vec();

    for col in 0..t {
        let pivot = (col..t).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        s.swap(col, pivot);
        let inv = gf::inv(a[col][col]);
        gf::mul_slice(&mut a[col][col..], inv);
        s[col] = gf::mul(s[col], inv);
        for r in 0..t {
            if r != col && a[r][col] != 0 {
                let f = a[r][col];
                // Rows `r` and `col` alias the same matrix, so an indexed
                // loop stays (iterating `a[r]` mutably would borrow-conflict
                // with reading the pivot row).
                #[allow(clippy::needless_range_loop)]
                for c in col..t {
                    a[r][c] ^= gf::mul(f, a[col][c]);
                }
                s[r] ^= gf::mul(f, s[col]);
            }
        }
    }
    Some(s)
}

/// `lambda - scale · x^shift · prev`, ascending coefficient order.
fn poly_sub_scaled_shifted(lambda: &[u8], prev: &[u8], scale: u8, shift: usize) -> Vec<u8> {
    let mut out = lambda.to_vec();
    if out.len() < prev.len() + shift {
        out.resize(prev.len() + shift, 0);
    }
    for (k, &c) in prev.iter().enumerate() {
        out[k + shift] ^= gf::mul(scale, c);
    }
    out
}

/// Polynomial multiplication, descending coefficient order.
fn poly_mul(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        for (j, &y) in b.iter().enumerate() {
            out[i + j] ^= gf::mul(x, y);
        }
    }
    out
}

/// Horner evaluation, descending coefficient order — oracle for the
/// row-table syndrome loop.
#[cfg(test)]
fn poly_eval(poly: &[u8], x: u8) -> u8 {
    poly.iter().fold(0u8, |acc, &c| gf::mul(acc, x) ^ c)
}

/// Horner evaluation, ascending coefficient order.
fn poly_eval_ascending(poly: &[u8], x: u8) -> u8 {
    poly.iter().rev().fold(0u8, |acc, &c| gf::mul(acc, x) ^ c)
}

/// The x8 Chipkill organization the paper evaluates: 18 chips across two
/// lock-stepped ECC-DIMMs, each beat carrying one byte per chip (16 data +
/// 2 check symbols), correcting any one failed chip of the 18.
///
/// A 64-byte cacheline is striped over [`Chipkill::BEATS`] beats.
///
/// ```
/// use synergy_ecc::reed_solomon::Chipkill;
/// use synergy_ecc::DecodeOutcome;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ck = Chipkill::new()?;
/// let data = [0x5A; 64];
/// let mut beats = ck.encode_line(&data)?;
///
/// // Chip 7 dies: every beat loses its 8th symbol.
/// for beat in beats.iter_mut() {
///     beat[7] = 0x00;
/// }
/// let (line, outcome) = ck.correct_line(&mut beats)?;
/// assert_eq!(line, Some(data));
/// assert_eq!(outcome, DecodeOutcome::Corrected);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Chipkill {
    rs: ReedSolomon,
}

impl Chipkill {
    /// Total chips in the lock-stepped pair of x8 ECC-DIMMs.
    pub const TOTAL_CHIPS: usize = 18;
    /// Data chips (the other two carry check symbols).
    pub const DATA_CHIPS: usize = 16;
    /// Beats per 64-byte cacheline (16 data bytes per beat).
    pub const BEATS: usize = 4;

    /// Creates the 18-chip Chipkill code.
    ///
    /// # Errors
    ///
    /// Never fails in practice; the signature mirrors [`ReedSolomon::new`].
    pub fn new() -> Result<Self, RsError> {
        Ok(Self { rs: ReedSolomon::new(Self::DATA_CHIPS, 2)? })
    }

    /// Encodes a 64-byte line into four 18-symbol beats (`data || check`).
    ///
    /// # Errors
    ///
    /// Propagates length errors from the inner code (unreachable for the
    /// fixed geometry).
    pub fn encode_line(&self, data: &[u8; 64]) -> Result<[[u8; 18]; 4], RsError> {
        let mut beats = [[0u8; 18]; 4];
        for (b, beat) in beats.iter_mut().enumerate() {
            let chunk = &data[b * 16..(b + 1) * 16];
            let cw = self.rs.encode_codeword(chunk)?;
            beat.copy_from_slice(&cw);
        }
        Ok(beats)
    }

    /// Corrects all four beats and reassembles the line.
    ///
    /// Returns `(Some(line), outcome)` when every beat decodes; `(None,
    /// DetectedUncorrectable)` when any beat is beyond repair (e.g. two
    /// chips failed).
    ///
    /// # Errors
    ///
    /// Propagates length errors from the inner code (unreachable here).
    pub fn correct_line(
        &self,
        beats: &mut [[u8; 18]; 4],
    ) -> Result<(Option<[u8; 64]>, DecodeOutcome), RsError> {
        let mut line = [0u8; 64];
        let mut worst = DecodeOutcome::Clean;
        for (b, beat) in beats.iter_mut().enumerate() {
            let report = self.rs.correct(beat)?;
            match report.outcome {
                DecodeOutcome::DetectedUncorrectable => {
                    return Ok((None, DecodeOutcome::DetectedUncorrectable))
                }
                DecodeOutcome::Corrected => worst = DecodeOutcome::Corrected,
                DecodeOutcome::Clean => {}
            }
            line[b * 16..(b + 1) * 16].copy_from_slice(&beat[..16]);
        }
        Ok((Some(line), worst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(d: usize, p: usize) -> ReedSolomon {
        ReedSolomon::new(d, p).unwrap()
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReedSolomon::new(0, 2).is_err());
        assert!(ReedSolomon::new(16, 0).is_err());
        assert!(ReedSolomon::new(254, 2).is_err());
        assert!(ReedSolomon::new(253, 2).is_ok());
    }

    #[test]
    fn row_table_syndromes_match_direct_evaluation() {
        for (d, p) in [(16usize, 2usize), (12, 4), (32, 8)] {
            let code = rs(d, p);
            let cw: Vec<u8> = (0..d + p).map(|i| (i * 29 + 5) as u8).collect();
            let direct: Vec<u8> = (0..p)
                .map(|j| poly_eval(&cw, gf::alpha_pow(j)))
                .collect();
            assert_eq!(code.syndromes(&cw), direct, "({d},{p})");
        }
    }

    #[test]
    fn codeword_has_zero_syndromes() {
        let code = rs(16, 4);
        let data: Vec<u8> = (0..16).map(|i| i * 7 + 3).collect();
        let cw = code.encode_codeword(&data).unwrap();
        assert!(code.syndromes(&cw).iter().all(|&s| s == 0));
    }

    #[test]
    fn clean_decode() {
        let code = rs(16, 2);
        let data = vec![9u8; 16];
        let mut cw = code.encode_codeword(&data).unwrap();
        let report = code.correct(&mut cw).unwrap();
        assert_eq!(report.outcome, DecodeOutcome::Clean);
        assert!(report.corrected_positions.is_empty());
    }

    #[test]
    fn corrects_single_error_at_every_position() {
        let code = rs(16, 2);
        let data: Vec<u8> = (0..16).collect();
        let clean = code.encode_codeword(&data).unwrap();
        for pos in 0..code.codeword_len() {
            for magnitude in [0x01u8, 0x80, 0xFF] {
                let mut cw = clean.clone();
                cw[pos] ^= magnitude;
                let report = code.correct(&mut cw).unwrap();
                assert_eq!(report.outcome, DecodeOutcome::Corrected, "pos {pos}");
                assert_eq!(report.corrected_positions, vec![pos]);
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn corrects_double_errors_with_four_check_symbols() {
        let code = rs(12, 4);
        let data: Vec<u8> = (0..12).map(|i| i * 13 + 1).collect();
        let clean = code.encode_codeword(&data).unwrap();
        for a in 0..16 {
            for b in (a + 1)..16 {
                let mut cw = clean.clone();
                cw[a] ^= 0x3C;
                cw[b] ^= 0xA1;
                let report = code.correct(&mut cw).unwrap();
                assert_eq!(report.outcome, DecodeOutcome::Corrected, "pos {a},{b}");
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn double_error_beyond_single_correct_capability_is_flagged_or_safe() {
        // With only 2 check symbols, two symbol errors exceed capability.
        // A bounded-distance decoder either flags them or (rarely) lands on
        // a different codeword; our decoder re-checks syndromes so a silent
        // wrong answer must itself be a valid codeword — count how often
        // the decode is flagged.
        let code = rs(16, 2);
        let data: Vec<u8> = (0..16).collect();
        let clean = code.encode_codeword(&data).unwrap();
        let mut flagged = 0;
        let mut total = 0;
        for a in 0..17 {
            let b = a + 1;
            let mut corrupted = clean.clone();
            corrupted[a] ^= 0x55;
            corrupted[b] ^= 0x55;
            total += 1;
            let mut cw = corrupted.clone();
            let report = code.correct(&mut cw).unwrap();
            // Miscorrection to some valid codeword is possible in
            // principle for beyond-capability errors, so only the flagged
            // outcome carries an obligation.
            if report.outcome == DecodeOutcome::DetectedUncorrectable {
                flagged += 1;
                // On a flagged decode the buffer must be left exactly as
                // the caller provided it (no half-applied patches).
                assert_eq!(cw, corrupted, "buffer must be rolled back");
            }
        }
        assert!(flagged * 2 >= total, "most double errors should be flagged");
    }

    #[test]
    fn erasure_correction_repairs_two_known_chips() {
        let code = rs(16, 2);
        let data: Vec<u8> = (0..16).map(|i| 255 - i).collect();
        let clean = code.encode_codeword(&data).unwrap();
        let mut cw = clean.clone();
        cw[2] = 0;
        cw[9] = 0xEE;
        let report = code.correct_with_erasures(&mut cw, &[2, 9]).unwrap();
        assert_eq!(report.outcome, DecodeOutcome::Corrected);
        assert_eq!(cw, clean);
    }

    #[test]
    fn erasure_with_clean_symbol_is_benign() {
        let code = rs(8, 2);
        let data = vec![1u8; 8];
        let clean = code.encode_codeword(&data).unwrap();
        let mut cw = clean.clone();
        cw[4] ^= 0x10;
        // Declare both a truly-bad and an actually-fine position.
        let report = code.correct_with_erasures(&mut cw, &[4, 6]).unwrap();
        assert_eq!(report.outcome, DecodeOutcome::Corrected);
        assert_eq!(cw, clean);
        assert_eq!(report.corrected_positions, vec![4]);
    }

    #[test]
    fn wrong_length_is_an_error() {
        let code = rs(16, 2);
        assert!(matches!(
            code.encode(&[0u8; 15]),
            Err(RsError::LengthMismatch { expected: 16, actual: 15 })
        ));
        let mut short = vec![0u8; 17];
        assert!(code.correct(&mut short).is_err());
    }

    #[test]
    fn random_single_errors_fuzz() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let code = rs(16, 2);
        for _ in 0..500 {
            let data: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            let clean = code.encode_codeword(&data).unwrap();
            let mut cw = clean.clone();
            let pos = rng.gen_range(0..18);
            let mag = rng.gen_range(1..=255u8);
            cw[pos] ^= mag;
            let report = code.correct(&mut cw).unwrap();
            assert_eq!(report.outcome, DecodeOutcome::Corrected);
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn random_t_errors_fuzz_with_wide_code() {
        use rand::{seq::SliceRandom, Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let code = rs(32, 8); // corrects 4 errors
        for trial in 0..200 {
            let data: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let clean = code.encode_codeword(&data).unwrap();
            let mut cw = clean.clone();
            let nerr = rng.gen_range(1..=4);
            let mut positions: Vec<usize> = (0..40).collect();
            positions.shuffle(&mut rng);
            for &pos in positions.iter().take(nerr) {
                cw[pos] ^= rng.gen_range(1..=255u8);
            }
            let report = code.correct(&mut cw).unwrap();
            assert_eq!(
                report.outcome,
                DecodeOutcome::Corrected,
                "trial {trial}, {nerr} errors"
            );
            assert_eq!(cw, clean, "trial {trial}");
        }
    }

    #[test]
    fn chipkill_roundtrip_and_chip_failure() {
        let ck = Chipkill::new().unwrap();
        let mut data = [0u8; 64];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i * 3) as u8;
        }
        let mut beats = ck.encode_line(&data).unwrap();
        let (line, outcome) = ck.correct_line(&mut beats.clone()).unwrap();
        assert_eq!(line, Some(data));
        assert_eq!(outcome, DecodeOutcome::Clean);

        // Kill chip 12 (a data chip) across all beats.
        for beat in beats.iter_mut() {
            beat[12] ^= 0xDE;
        }
        let (line, outcome) = ck.correct_line(&mut beats).unwrap();
        assert_eq!(line, Some(data));
        assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    #[test]
    fn chipkill_check_chip_failure_is_also_corrected() {
        let ck = Chipkill::new().unwrap();
        let data = [0xA7; 64];
        let mut beats = ck.encode_line(&data).unwrap();
        for beat in beats.iter_mut() {
            beat[17] = !beat[17]; // the last check chip
        }
        let (line, outcome) = ck.correct_line(&mut beats).unwrap();
        assert_eq!(line, Some(data));
        assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    #[test]
    fn chipkill_two_chip_failure_detected() {
        let ck = Chipkill::new().unwrap();
        let data = [0x11; 64];
        let mut beats = ck.encode_line(&data).unwrap();
        for beat in beats.iter_mut() {
            beat[3] ^= 0x77;
            beat[8] ^= 0x21;
        }
        let (line, outcome) = ck.correct_line(&mut beats).unwrap();
        // Two whole chips exceed Chipkill — the paper's motivation for
        // counting "1 failure out of 18" as the reliability unit.
        assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
        assert_eq!(line, None);
    }
}
