//! (72,64) SECDED — single-error-correction, double-error-detection.
//!
//! This is the extended Hamming code used by conventional 9-chip x8
//! ECC-DIMMs: each 64-bit data word carries 8 check bits in the ECC chip
//! (12.5% overhead, the same overhead SYNERGY re-purposes for the MAC).
//!
//! Encoding places data and check bits in the classic Hamming positions
//! (check bits at powers of two, plus an overall parity bit at position 0).
//! Decoding computes the syndrome and overall parity:
//!
//! | syndrome | parity | meaning |
//! |---|---|---|
//! | 0 | even | clean |
//! | s ≠ 0 | odd | single-bit error at position `s` — corrected |
//! | 0 | odd | error in the overall parity bit — corrected |
//! | s ≠ 0 | even | double-bit error — detected, uncorrectable |

use crate::DecodeOutcome;

/// Number of Hamming check bits (positions 1,2,4,...,64).
const CHECK_BITS: usize = 7;
/// Total codeword length including the overall parity bit at position 0.
const CODEWORD_BITS: usize = 72;

/// A (72,64) SECDED codeword: 64 data bits plus 8 check bits.
///
/// ```
/// use synergy_ecc::secded::Codeword;
/// use synergy_ecc::DecodeOutcome;
///
/// let cw = Codeword::encode(0xDEAD_BEEF_0123_4567);
/// // A single-bit upset anywhere in the 72 bits is corrected:
/// let (data, outcome) = cw.with_bit_flipped(17).decode();
/// assert_eq!(data, Some(0xDEAD_BEEF_0123_4567));
/// assert_eq!(outcome, DecodeOutcome::Corrected);
///
/// // Two upsets are detected but not corrected:
/// let (_, outcome) = cw.with_bit_flipped(3).with_bit_flipped(40).decode();
/// assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword(u128);

/// True if `pos` (1-based Hamming position) holds a check bit.
#[inline]
fn is_check_position(pos: usize) -> bool {
    pos.is_power_of_two()
}

impl Codeword {
    /// Encodes a 64-bit data word into a 72-bit SECDED codeword.
    pub fn encode(data: u64) -> Self {
        let mut bits = 0u128;
        // Scatter data bits into non-check positions 1..72.
        let mut d = 0;
        for pos in 1..CODEWORD_BITS {
            if !is_check_position(pos) {
                if (data >> d) & 1 == 1 {
                    bits |= 1 << pos;
                }
                d += 1;
            }
        }
        debug_assert_eq!(d, 64);
        // Hamming check bits: check bit at 2^i covers positions with bit i set.
        for i in 0..CHECK_BITS {
            let mask = 1usize << i;
            let mut parity = 0u32;
            for pos in 1..CODEWORD_BITS {
                if pos & mask != 0 && !is_check_position(pos) && (bits >> pos) & 1 == 1 {
                    parity ^= 1;
                }
            }
            if parity == 1 {
                bits |= 1 << mask;
            }
        }
        // Overall parity (position 0) makes the whole codeword even-weight.
        if (bits.count_ones() & 1) == 1 {
            bits |= 1;
        }
        Self(bits)
    }

    /// Reassembles a codeword from stored data + check byte, as read from
    /// the 8 data chips and the ECC chip.
    pub fn from_parts(data: u64, check: u8) -> Self {
        let mut bits = 0u128;
        let mut d = 0;
        for pos in 1..CODEWORD_BITS {
            if !is_check_position(pos) {
                if (data >> d) & 1 == 1 {
                    bits |= 1 << pos;
                }
                d += 1;
            }
        }
        // Check byte layout: bit 0 = overall parity, bits 1..8 = Hamming
        // check bits in position order 1,2,4,8,16,32,64.
        if check & 1 != 0 {
            bits |= 1;
        }
        for i in 0..CHECK_BITS {
            if (check >> (i + 1)) & 1 != 0 {
                bits |= 1 << (1usize << i);
            }
        }
        Self(bits)
    }

    /// Splits the codeword into the stored representation:
    /// `(data word, check byte)`.
    pub fn to_parts(self) -> (u64, u8) {
        let mut data = 0u64;
        let mut d = 0;
        for pos in 1..CODEWORD_BITS {
            if !is_check_position(pos) {
                if (self.0 >> pos) & 1 == 1 {
                    data |= 1 << d;
                }
                d += 1;
            }
        }
        let mut check = (self.0 & 1) as u8;
        for i in 0..CHECK_BITS {
            if (self.0 >> (1usize << i)) & 1 == 1 {
                check |= 1 << (i + 1);
            }
        }
        (data, check)
    }

    /// Returns the raw 72-bit codeword (bits above 71 are zero).
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Returns a copy with bit `pos` (0..72) flipped — fault injection.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 72`.
    #[must_use]
    pub fn with_bit_flipped(self, pos: usize) -> Self {
        assert!(pos < CODEWORD_BITS, "bit position {pos} out of range");
        Self(self.0 ^ (1 << pos))
    }

    /// Decodes the codeword.
    ///
    /// Returns the corrected data word (or `None` for a detected
    /// uncorrectable error) along with the [`DecodeOutcome`].
    pub fn decode(self) -> (Option<u64>, DecodeOutcome) {
        let mut syndrome = 0usize;
        for pos in 1..CODEWORD_BITS {
            if (self.0 >> pos) & 1 == 1 {
                syndrome ^= pos;
            }
        }
        let overall_parity_odd = (self.0.count_ones() & 1) == 1;
        match (syndrome, overall_parity_odd) {
            (0, false) => (Some(self.to_parts().0), DecodeOutcome::Clean),
            (0, true) => {
                // The overall parity bit itself flipped; data is intact.
                (Some(self.to_parts().0), DecodeOutcome::Corrected)
            }
            (s, true) => {
                let fixed = Self(self.0 ^ (1 << s));
                (Some(fixed.to_parts().0), DecodeOutcome::Corrected)
            }
            (_, false) => (None, DecodeOutcome::DetectedUncorrectable),
        }
    }
}

/// Encodes all eight 64-bit words of a 64-byte cacheline, producing the
/// 8 check bytes stored in the ECC chip.
pub fn encode_line(words: &[u64; 8]) -> [u8; 8] {
    let mut check = [0u8; 8];
    for (i, &w) in words.iter().enumerate() {
        check[i] = Codeword::encode(w).to_parts().1;
    }
    check
}

/// Decodes a full cacheline of eight words against its 8 check bytes.
///
/// Returns the corrected words and the worst outcome across the line
/// (a line is only usable if every word decodes).
pub fn decode_line(words: &[u64; 8], check: &[u8; 8]) -> (Option<[u64; 8]>, DecodeOutcome) {
    let mut out = [0u64; 8];
    let mut worst = DecodeOutcome::Clean;
    for i in 0..8 {
        let (decoded, outcome) = Codeword::from_parts(words[i], check[i]).decode();
        match decoded {
            Some(w) => out[i] = w,
            None => return (None, DecodeOutcome::DetectedUncorrectable),
        }
        if outcome == DecodeOutcome::Corrected {
            worst = DecodeOutcome::Corrected;
        }
    }
    (Some(out), worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for data in [0u64, u64::MAX, 0xDEAD_BEEF, 1, 1 << 63, 0x5555_5555_5555_5555] {
            let cw = Codeword::encode(data);
            let (decoded, outcome) = cw.decode();
            assert_eq!(decoded, Some(data));
            assert_eq!(outcome, DecodeOutcome::Clean);
        }
    }

    #[test]
    fn parts_roundtrip() {
        let cw = Codeword::encode(0x0123_4567_89AB_CDEF);
        let (data, check) = cw.to_parts();
        assert_eq!(Codeword::from_parts(data, check), cw);
    }

    #[test]
    fn corrects_every_single_bit_error() {
        let data = 0xA5A5_5A5A_DEAD_BEEF;
        let cw = Codeword::encode(data);
        for pos in 0..72 {
            let (decoded, outcome) = cw.with_bit_flipped(pos).decode();
            assert_eq!(decoded, Some(data), "position {pos}");
            assert_eq!(outcome, DecodeOutcome::Corrected, "position {pos}");
        }
    }

    #[test]
    fn detects_every_double_bit_error() {
        let data = 0x0F0F_F0F0_1234_5678;
        let cw = Codeword::encode(data);
        for a in 0..72 {
            for b in (a + 1)..72 {
                let (decoded, outcome) = cw.with_bit_flipped(a).with_bit_flipped(b).decode();
                assert_eq!(
                    outcome,
                    DecodeOutcome::DetectedUncorrectable,
                    "positions {a},{b} miscorrected"
                );
                assert_eq!(decoded, None);
            }
        }
    }

    #[test]
    fn chip_failure_exceeds_secded() {
        // An entire x8 chip supplies 8 adjacent data bits of each word; its
        // failure flips up to 8 bits — far beyond SECDED. With 8 flipped
        // bits (even count) the error is at best detected, and may alias;
        // we verify it is never silently *corrected to wrong data*... which
        // SECDED cannot actually guarantee — this is exactly why the paper
        // needs Chipkill/SYNERGY. Here we just confirm multi-bit chip errors
        // are not reliably corrected.
        let data = 0xFFFF_0000_FFFF_0000u64;
        let cw = Codeword::encode(data);
        // Flip four bits of the word (part of one chip's slice). Positions
        // are chosen so the syndrome XOR (10^11^12^14 = 3) is nonzero —
        // with a *different* unlucky set (e.g. 10,11,12,13) the syndromes
        // cancel and the error is silent, which is precisely why SECDED is
        // inadequate against chip failures (§II-B of the paper).
        let mut corrupted = cw;
        for pos in [10usize, 11, 12, 14] {
            corrupted = corrupted.with_bit_flipped(pos);
        }
        let (decoded, outcome) = corrupted.decode();
        assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
        assert_eq!(decoded, None);

        // And demonstrate the silent-aliasing case explicitly:
        let mut aliased = cw;
        for pos in [10usize, 11, 12, 13] {
            aliased = aliased.with_bit_flipped(pos);
        }
        let (decoded, outcome) = aliased.decode();
        assert_eq!(outcome, DecodeOutcome::Clean, "4-bit chip error aliases");
        assert_ne!(decoded, Some(data), "…and silently corrupts data");
    }

    #[test]
    fn line_encode_decode_clean() {
        let words = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let check = encode_line(&words);
        let (decoded, outcome) = decode_line(&words, &check);
        assert_eq!(decoded, Some(words));
        assert_eq!(outcome, DecodeOutcome::Clean);
    }

    #[test]
    fn line_corrects_one_bit_per_word() {
        let words = [0xAAAA_AAAA_AAAA_AAAAu64; 8];
        let check = encode_line(&words);
        let mut corrupted = words;
        // One single-bit error in every word — a "single column" DRAM fault:
        // SECDED corrects each word independently.
        for w in corrupted.iter_mut() {
            *w ^= 1 << 13;
        }
        let (decoded, outcome) = decode_line(&corrupted, &check);
        assert_eq!(decoded, Some(words));
        assert_eq!(outcome, DecodeOutcome::Corrected);
    }

    #[test]
    fn line_detects_word_fault() {
        let words = [7u64; 8];
        let check = encode_line(&words);
        let mut corrupted = words;
        corrupted[3] ^= 0b11 << 20; // two bits in one word
        let (decoded, outcome) = decode_line(&corrupted, &check);
        assert_eq!(decoded, None);
        assert_eq!(outcome, DecodeOutcome::DetectedUncorrectable);
    }

    #[test]
    fn check_bits_differ_across_data() {
        // Different words should (typically) produce different check bytes.
        let a = Codeword::encode(0).to_parts().1;
        let b = Codeword::encode(1).to_parts().1;
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_bounds_checked() {
        let _ = Codeword::encode(0).with_bit_flipped(72);
    }
}
