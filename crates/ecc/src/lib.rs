//! Error-correction substrate for the SYNERGY reproduction.
//!
//! The paper evaluates three reliability mechanisms, all implemented here
//! from scratch:
//!
//! * [`secded`] — the (72,64) single-error-correct / double-error-detect
//!   Hamming code stored in the 9th chip of a conventional ECC-DIMM. This is
//!   what the SGX / SGX_O baselines use.
//! * [`reed_solomon`] — symbol-based Reed–Solomon codes over GF(2^8)
//!   ([`gf256`]), the construction behind commercial Chipkill: with two check
//!   symbols per codeword, any single failed chip (symbol) out of 18 can be
//!   corrected.
//! * [`parity`] — the RAID-3 XOR parity that SYNERGY pairs with its MAC:
//!   an 8-byte parity over 9 chip slices (8 data + 1 MAC) reconstructs the
//!   contents of any one failed chip, and a parity-of-parities protects the
//!   parity cachelines themselves.
//!
//! # Which code tolerates what
//!
//! | Code | Corrects | Detects | Paper role |
//! |---|---|---|---|
//! | SECDED | 1 bit / 72-bit word | 2 bits | baseline ECC-DIMM |
//! | Chipkill RS | 1 chip / 18 | 2 chips (flagged) | costly baseline, Fig 11 |
//! | MAC + parity | 1 chip / 9 | any corruption (via MAC) | SYNERGY |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gf256;
pub mod parity;
pub mod reed_solomon;
pub mod secded;

/// Outcome of an ECC decode attempt, common to every code in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// Codeword was error-free.
    Clean,
    /// An error was present and corrected; the payload is now trustworthy.
    Corrected,
    /// An error was detected but exceeds the code's correction capability
    /// (a DUE — detected uncorrectable error).
    DetectedUncorrectable,
}

impl DecodeOutcome {
    /// True when the decoded data is usable (clean or corrected).
    pub fn is_ok(self) -> bool {
        !matches!(self, DecodeOutcome::DetectedUncorrectable)
    }
}

impl core::fmt::Display for DecodeOutcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            DecodeOutcome::Clean => "clean",
            DecodeOutcome::Corrected => "corrected",
            DecodeOutcome::DetectedUncorrectable => "detected-uncorrectable",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_usability() {
        assert!(DecodeOutcome::Clean.is_ok());
        assert!(DecodeOutcome::Corrected.is_ok());
        assert!(!DecodeOutcome::DetectedUncorrectable.is_ok());
    }

    #[test]
    fn outcome_display() {
        assert_eq!(DecodeOutcome::Clean.to_string(), "clean");
        assert_eq!(
            DecodeOutcome::DetectedUncorrectable.to_string(),
            "detected-uncorrectable"
        );
    }
}
