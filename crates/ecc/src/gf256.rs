//! GF(2^8) arithmetic — the symbol field for Reed–Solomon Chipkill codes.
//!
//! Uses the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D) with
//! generator α = 2, the conventional choice for RS codes over bytes.
//! Log/antilog tables are built once at first use.

/// The primitive polynomial 0x11D reduced to 8 bits (0x1D) after the x^8 term.
const POLY: u16 = 0x11D;

/// Precomputed exp/log tables for GF(2^8).
struct Tables {
    exp: [u8; 512],
    log: [u8; 256],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x: u16 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        // Duplicate the table so exp[(a+b) mod 255] lookups need no modulo.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// Adds two field elements (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics if `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "zero has no multiplicative inverse in GF(2^8)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Divides `a` by `b`.
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Raises the generator α (=2) to the power `e`.
#[inline]
pub fn alpha_pow(e: usize) -> u8 {
    tables().exp[e % 255]
}

/// Discrete log base α of a nonzero element.
///
/// # Panics
///
/// Panics if `a == 0`.
#[inline]
pub fn log(a: u8) -> usize {
    assert!(a != 0, "log of zero is undefined");
    tables().log[a as usize] as usize
}

/// Builds the 256-entry multiplication row for a fixed coefficient:
/// `row[x] = coeff · x`. One log lookup for the coefficient plus one
/// exp lookup per entry — after which multiplying *any* byte by `coeff`
/// is a single indexed load. This is what the Reed–Solomon encoder and
/// syndrome loops use to avoid the double-log-lookup of [`mul`] per byte.
pub fn mul_row(coeff: u8) -> [u8; 256] {
    let mut row = [0u8; 256];
    if coeff == 0 {
        return row;
    }
    let t = tables();
    let lc = t.log[coeff as usize] as usize;
    for (x, r) in row.iter_mut().enumerate().skip(1) {
        *r = t.exp[lc + t.log[x] as usize];
    }
    row
}

/// Length at which building a [`mul_row`] (256 table stores) pays for
/// itself versus per-byte [`mul`] calls.
const MUL_SLICE_ROW_THRESHOLD: usize = 32;

/// Multiplies every byte of `dst` by `coeff` in place.
///
/// Short slices use direct log/exp multiplies; long slices amortize a
/// per-coefficient [`mul_row`] so the inner loop is one load per byte.
pub fn mul_slice(dst: &mut [u8], coeff: u8) {
    match coeff {
        0 => dst.fill(0),
        1 => {}
        _ if dst.len() >= MUL_SLICE_ROW_THRESHOLD => {
            let row = mul_row(coeff);
            for d in dst.iter_mut() {
                *d = row[*d as usize];
            }
        }
        _ => {
            let t = tables();
            let lc = t.log[coeff as usize] as usize;
            for d in dst.iter_mut() {
                if *d != 0 {
                    *d = t.exp[lc + t.log[*d as usize] as usize];
                }
            }
        }
    }
}

/// Raises `a` to the power `e`.
pub fn pow(a: u8, e: usize) -> u8 {
    if a == 0 {
        return if e == 0 { 1 } else { 0 };
    }
    alpha_pow(log(a) * e % 255)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(1, a), a);
            assert_eq!(mul(a, 0), 0);
        }
    }

    #[test]
    fn mul_commutative() {
        for a in (0..=255u8).step_by(7) {
            for b in (0..=255u8).step_by(11) {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
    }

    #[test]
    fn mul_associative() {
        for a in (1..=255u8).step_by(17) {
            for b in (1..=255u8).step_by(23) {
                for c in (1..=255u8).step_by(29) {
                    assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
                }
            }
        }
    }

    #[test]
    fn distributive_over_add() {
        for a in (0..=255u8).step_by(13) {
            for b in (0..=255u8).step_by(19) {
                for c in (0..=255u8).step_by(31) {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "inv({a})");
        }
    }

    #[test]
    fn div_inverts_mul() {
        for a in (0..=255u8).step_by(5) {
            for b in (1..=255u8).step_by(7) {
                assert_eq!(div(mul(a, b), b), a);
            }
        }
    }

    #[test]
    fn alpha_has_order_255() {
        assert_eq!(alpha_pow(0), 1);
        assert_eq!(alpha_pow(255), 1);
        // No smaller power returns to 1 (α is primitive).
        for e in 1..255 {
            assert_ne!(alpha_pow(e), 1, "alpha^{e} == 1");
        }
    }

    #[test]
    fn log_inverts_alpha_pow() {
        for e in 0..255 {
            assert_eq!(log(alpha_pow(e)), e);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        for a in [1u8, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for e in 0..20 {
                assert_eq!(pow(a, e), acc, "a={a}, e={e}");
                acc = mul(acc, a);
            }
        }
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "no multiplicative inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    #[test]
    fn mul_row_matches_mul_exhaustively() {
        for coeff in 0..=255u8 {
            let row = mul_row(coeff);
            for x in 0..=255u8 {
                assert_eq!(row[x as usize], mul(coeff, x), "coeff={coeff} x={x}");
            }
        }
    }

    #[test]
    fn mul_slice_matches_elementwise_mul() {
        // Cover both the short (direct) and long (row-amortized) paths.
        for len in [0usize, 1, 5, 31, 32, 200] {
            for coeff in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
                let src: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
                let mut dst = src.clone();
                mul_slice(&mut dst, coeff);
                for (d, s) in dst.iter().zip(src.iter()) {
                    assert_eq!(*d, mul(*s, coeff), "len={len} coeff={coeff}");
                }
            }
        }
    }
}
