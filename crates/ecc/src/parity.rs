//! RAID-3 chip parity — SYNERGY's correction mechanism (§III, Figure 5).
//!
//! SYNERGY detects errors with the MAC and corrects them with a simple XOR
//! parity constructed over the nine chips of the ECC-DIMM: the eight 8-byte
//! data slices plus the 8-byte MAC held in the ECC chip. Given the parity
//! and any eight of the nine slices, the ninth is reconstructed as the XOR
//! of the rest — exactly RAID-3.
//!
//! Because the faulty chip's identity is unknown, the reconstruction engine
//! (in `synergy-core`) tries each chip in turn and validates each attempt
//! with a MAC recomputation. This module provides the pure parity algebra:
//! construction, verification and single-slice reconstruction, plus the
//! parity-of-parities that protects the parity cachelines themselves
//! (stored in the ECC chip alongside them, §III-A).

/// Number of protected chips: 8 data + 1 MAC.
pub const CHIPS: usize = 9;

/// One chip's 8-byte contribution to a cacheline.
pub type ChipSlice = [u8; 8];

/// Computes the 8-byte parity over nine chip slices
/// (`P = C0 ⊕ C1 ⊕ … ⊕ C7 ⊕ MAC`).
pub fn compute(slices: &[ChipSlice; CHIPS]) -> ChipSlice {
    let mut parity = [0u8; 8];
    for slice in slices {
        for (p, b) in parity.iter_mut().zip(slice.iter()) {
            *p ^= b;
        }
    }
    parity
}

/// Computes the parity over an arbitrary number of slices — used for the
/// 8-slice counter-cacheline parities (`ParityC`, `ParityT`) and the
/// parity-of-parities (`ParityP`).
pub fn compute_over(slices: &[ChipSlice]) -> ChipSlice {
    let mut parity = [0u8; 8];
    for slice in slices {
        for (p, b) in parity.iter_mut().zip(slice.iter()) {
            *p ^= b;
        }
    }
    parity
}

/// Verifies that `parity` matches the XOR of `slices`.
pub fn verify(slices: &[ChipSlice; CHIPS], parity: &ChipSlice) -> bool {
    compute(slices) == *parity
}

/// Reconstructs the slice of chip `failed` from the other eight slices and
/// the parity: `C_f = P ⊕ ⊕_{i≠f} C_i`.
///
/// The contents currently stored for chip `failed` are ignored.
///
/// # Panics
///
/// Panics if `failed >= 9`.
pub fn reconstruct(slices: &[ChipSlice; CHIPS], parity: &ChipSlice, failed: usize) -> ChipSlice {
    assert!(failed < CHIPS, "chip index {failed} out of range");
    let mut out = *parity;
    for (i, slice) in slices.iter().enumerate() {
        if i != failed {
            for (o, b) in out.iter_mut().zip(slice.iter()) {
                *o ^= b;
            }
        }
    }
    out
}

/// Reconstructs a slice within an arbitrary-width group (for counter
/// cachelines, which carry an 8-slice parity in the ECC chip).
///
/// # Panics
///
/// Panics if `failed >= slices.len()`.
pub fn reconstruct_over(slices: &[ChipSlice], parity: &ChipSlice, failed: usize) -> ChipSlice {
    assert!(failed < slices.len(), "chip index {failed} out of range");
    let mut out = *parity;
    for (i, slice) in slices.iter().enumerate() {
        if i != failed {
            for (o, b) in out.iter_mut().zip(slice.iter()) {
                *o ^= b;
            }
        }
    }
    out
}

/// A parity cacheline: eight 8-byte parities packed so each chip `Cᵢ`
/// supplies one parity (Figure 7(a)), with the parity-of-parities
/// (`ParityP = P0 ⊕ … ⊕ P7`) stored in the ECC chip of the same line.
///
/// This layout means a failed chip that held both a data line and that
/// line's parity (in different cachelines) is still recoverable: `ParityP`
/// reconstructs the lost parity, which then reconstructs the lost data.
///
/// ```
/// use synergy_ecc::parity::ParityLine;
///
/// let parities = [[1u8; 8], [2; 8], [3; 8], [4; 8], [5; 8], [6; 8], [7; 8], [8; 8]];
/// let line = ParityLine::new(parities);
///
/// // Chip 3 fails, taking parity P3 with it:
/// let recovered = line.reconstruct_parity(3);
/// assert_eq!(recovered, [4; 8]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityLine {
    parities: [ChipSlice; 8],
    parity_of_parities: ChipSlice,
}

impl ParityLine {
    /// Packs eight parities into a parity cacheline and derives `ParityP`.
    pub fn new(parities: [ChipSlice; 8]) -> Self {
        let parity_of_parities = compute_over(&parities);
        Self { parities, parity_of_parities }
    }

    /// Rebuilds a parity line from stored bytes (after a memory read).
    pub fn from_parts(parities: [ChipSlice; 8], parity_of_parities: ChipSlice) -> Self {
        Self { parities, parity_of_parities }
    }

    /// The parity slice stored in chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn parity(&self, i: usize) -> ChipSlice {
        self.parities[i]
    }

    /// Replaces the parity slice stored in chip `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn set_parity(&mut self, i: usize, value: ChipSlice) {
        self.parities[i] = value;
        self.parity_of_parities = compute_over(&self.parities);
    }

    /// The parity-of-parities stored in the ECC chip.
    pub fn parity_of_parities(&self) -> ChipSlice {
        self.parity_of_parities
    }

    /// True when `ParityP` is consistent with the eight parities.
    pub fn is_consistent(&self) -> bool {
        compute_over(&self.parities) == self.parity_of_parities
    }

    /// Reconstructs parity `i` from the other seven parities and `ParityP`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn reconstruct_parity(&self, i: usize) -> ChipSlice {
        reconstruct_over(&self.parities, &self.parity_of_parities, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_slices() -> [ChipSlice; CHIPS] {
        let mut slices = [[0u8; 8]; CHIPS];
        for (i, s) in slices.iter_mut().enumerate() {
            for (j, b) in s.iter_mut().enumerate() {
                *b = (i * 8 + j) as u8 ^ 0x5A;
            }
        }
        slices
    }

    #[test]
    fn parity_verifies() {
        let slices = sample_slices();
        let p = compute(&slices);
        assert!(verify(&slices, &p));
    }

    #[test]
    fn corrupted_slice_fails_verification() {
        let slices = sample_slices();
        let p = compute(&slices);
        for chip in 0..CHIPS {
            let mut bad = slices;
            bad[chip][0] ^= 0xFF;
            assert!(!verify(&bad, &p), "chip {chip}");
        }
    }

    #[test]
    fn reconstruct_every_chip() {
        let slices = sample_slices();
        let p = compute(&slices);
        for failed in 0..CHIPS {
            let mut corrupted = slices;
            corrupted[failed] = [0xEE; 8]; // garbage from the failed chip
            let rebuilt = reconstruct(&corrupted, &p, failed);
            assert_eq!(rebuilt, slices[failed], "chip {failed}");
        }
    }

    #[test]
    fn reconstruct_ignores_failed_chip_contents() {
        let slices = sample_slices();
        let p = compute(&slices);
        let mut a = slices;
        a[4] = [0; 8];
        let mut b = slices;
        b[4] = [0xFF; 8];
        assert_eq!(reconstruct(&a, &p, 4), reconstruct(&b, &p, 4));
    }

    #[test]
    fn two_chip_failure_reconstruction_is_wrong() {
        // RAID-3 cannot fix two failed chips — the MAC check in the
        // reconstruction engine is what catches this case.
        let slices = sample_slices();
        let p = compute(&slices);
        let mut corrupted = slices;
        corrupted[1] = [0; 8];
        corrupted[2] = [0; 8];
        assert_ne!(reconstruct(&corrupted, &p, 1), slices[1]);
    }

    #[test]
    fn parity_line_roundtrip() {
        let parities = [[9u8; 8]; 8];
        let line = ParityLine::new(parities);
        assert!(line.is_consistent());
        for i in 0..8 {
            assert_eq!(line.parity(i), [9u8; 8]);
            assert_eq!(line.reconstruct_parity(i), [9u8; 8]);
        }
    }

    #[test]
    fn parity_line_detects_inconsistency() {
        let mut parities = [[1u8; 8]; 8];
        parities[3] = [7; 8];
        let line = ParityLine::new(parities);
        let mut stored = line;
        // Simulate a corrupted stored parity without updating ParityP.
        stored.parities[3] = [0; 8];
        assert!(!stored.is_consistent());
        assert_eq!(stored.reconstruct_parity(3), [7; 8]);
    }

    #[test]
    fn set_parity_keeps_parity_p_current() {
        let mut line = ParityLine::new([[0u8; 8]; 8]);
        line.set_parity(5, [0xAB; 8]);
        assert!(line.is_consistent());
        assert_eq!(line.reconstruct_parity(5), [0xAB; 8]);
    }

    #[test]
    fn compute_over_empty_is_zero() {
        assert_eq!(compute_over(&[]), [0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reconstruct_bounds_checked() {
        let slices = sample_slices();
        let p = compute(&slices);
        reconstruct(&slices, &p, 9);
    }
}
