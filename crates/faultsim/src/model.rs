//! The fault-rate model: Table I of the paper (Sridharan & Liberty \[8\]).

use crate::fault::FaultMode;

/// FIT rates (failures per billion device-hours) for one failure mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeRate {
    /// The failure mode.
    pub mode: FaultMode,
    /// Transient-fault FIT.
    pub transient_fit: f64,
    /// Permanent-fault FIT.
    pub permanent_fit: f64,
}

impl ModeRate {
    /// Combined FIT for the mode.
    pub fn total_fit(&self) -> f64 {
        self.transient_fit + self.permanent_fit
    }
}

/// A complete per-chip fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    rates: Vec<ModeRate>,
}

impl FaultModel {
    /// Table I of the paper — DRAM failures per billion hours per chip.
    pub fn sridharan() -> Self {
        use FaultMode::*;
        Self {
            rates: vec![
                ModeRate { mode: SingleBit, transient_fit: 14.2, permanent_fit: 18.6 },
                ModeRate { mode: SingleWord, transient_fit: 1.4, permanent_fit: 0.3 },
                ModeRate { mode: SingleColumn, transient_fit: 1.4, permanent_fit: 5.6 },
                ModeRate { mode: SingleRow, transient_fit: 0.2, permanent_fit: 8.2 },
                ModeRate { mode: SingleBank, transient_fit: 0.8, permanent_fit: 10.0 },
                ModeRate { mode: MultiBank, transient_fit: 0.3, permanent_fit: 1.4 },
                ModeRate { mode: MultiRank, transient_fit: 0.9, permanent_fit: 2.8 },
            ],
        }
    }

    /// Builds a custom model.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a negative rate.
    pub fn new(rates: Vec<ModeRate>) -> Self {
        assert!(!rates.is_empty(), "fault model needs at least one mode");
        for r in &rates {
            assert!(
                r.transient_fit >= 0.0 && r.permanent_fit >= 0.0,
                "FIT rates must be non-negative"
            );
        }
        Self { rates }
    }

    /// Scales every rate by `factor` (for acceleration studies).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            rates: self
                .rates
                .iter()
                .map(|r| ModeRate {
                    mode: r.mode,
                    transient_fit: r.transient_fit * factor,
                    permanent_fit: r.permanent_fit * factor,
                })
                .collect(),
        }
    }

    /// Per-mode rates.
    pub fn rates(&self) -> &[ModeRate] {
        &self.rates
    }

    /// Total per-chip FIT across modes.
    pub fn total_fit(&self) -> f64 {
        self.rates.iter().map(ModeRate::total_fit).sum()
    }

    /// Expected faults for one chip over `hours`.
    pub fn expected_faults_per_chip(&self, hours: f64) -> f64 {
        self.total_fit() * 1e-9 * hours
    }

    /// Samples a (mode, permanent) pair proportionally to the rates.
    pub fn sample_mode<R: rand::Rng>(&self, rng: &mut R) -> (FaultMode, bool) {
        let total = self.total_fit();
        let mut x = rng.gen_range(0.0..total);
        for r in &self.rates {
            if x < r.transient_fit {
                return (r.mode, false);
            }
            x -= r.transient_fit;
            if x < r.permanent_fit {
                return (r.mode, true);
            }
            x -= r.permanent_fit;
        }
        // Floating-point edge: attribute to the last mode.
        let last = self.rates.last().expect("non-empty by construction");
        (last.mode, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table_one_totals() {
        let m = FaultModel::sridharan();
        // Sum of Table I: 14.2+18.6+1.4+0.3+1.4+5.6+0.2+8.2+0.8+10+0.3+1.4+0.9+2.8
        assert!((m.total_fit() - 66.1).abs() < 1e-9, "total {}", m.total_fit());
        assert_eq!(m.rates().len(), 7);
    }

    #[test]
    fn roughly_half_the_fits_defeat_secded() {
        // §II-B: single-bit failures are ~50% of the total; SECDED halves
        // the failure probability.
        let m = FaultModel::sridharan();
        let uncorrectable: f64 = m
            .rates()
            .iter()
            .filter(|r| r.mode.defeats_secded())
            .map(ModeRate::total_fit)
            .sum();
        let frac = uncorrectable / m.total_fit();
        assert!(frac > 0.3 && frac < 0.6, "uncorrectable fraction {frac}");
    }

    #[test]
    fn expected_faults_scale() {
        let m = FaultModel::sridharan();
        let seven_years = 7.0 * 365.25 * 24.0;
        let e = m.expected_faults_per_chip(seven_years);
        // 66.1e-9 * 61362 ≈ 4.06e-3 faults per chip over 7 years.
        assert!((e - 4.06e-3).abs() < 2e-4, "expected {e}");
        assert!((m.scaled(10.0).expected_faults_per_chip(seven_years) - 10.0 * e).abs() < 1e-9);
    }

    #[test]
    fn sample_mode_distribution_tracks_rates() {
        let m = FaultModel::sridharan();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let n = 100_000;
        let mut single_bit = 0;
        let mut permanent = 0;
        for _ in 0..n {
            let (mode, perm) = m.sample_mode(&mut rng);
            if mode == FaultMode::SingleBit {
                single_bit += 1;
            }
            if perm {
                permanent += 1;
            }
        }
        let sb_frac = single_bit as f64 / n as f64;
        let expected_sb = 32.8 / 66.1;
        assert!((sb_frac - expected_sb).abs() < 0.01, "single-bit {sb_frac}");
        let perm_frac = permanent as f64 / n as f64;
        let expected_perm = 46.9 / 66.1;
        assert!((perm_frac - expected_perm).abs() < 0.01, "permanent {perm_frac}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rates_rejected() {
        FaultModel::new(vec![ModeRate {
            mode: FaultMode::SingleBit,
            transient_fit: -1.0,
            permanent_fit: 0.0,
        }]);
    }
}
