//! ECC-policy evaluation: does a set of faults defeat the correction scheme?

use crate::fault::Fault;

/// The reliability schemes compared in Figure 11 (plus IVEC from §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EccPolicy {
    /// No correction: any fault is fatal (commodity non-ECC DIMM).
    None,
    /// (72,64) SECDED on a 9-chip ECC-DIMM.
    Secded,
    /// Symbol-based Chipkill over 18 chips (two lock-stepped ECC-DIMMs):
    /// corrects 1 chip of 18.
    Chipkill,
    /// SYNERGY: MAC detection + RAID-3 parity, corrects 1 chip of 9.
    Synergy,
    /// IVEC on commodity x4 DIMMs: corrects 1 chip of 16.
    Ivec,
}

impl EccPolicy {
    /// Chips in one correction domain (the "device" of the Monte Carlo).
    pub fn domain_chips(self) -> usize {
        match self {
            EccPolicy::None => 8,
            EccPolicy::Secded | EccPolicy::Synergy => 9,
            EccPolicy::Chipkill => 18,
            EccPolicy::Ivec => 16,
        }
    }

    /// Word columns spanned by one correction codeword — the granularity
    /// at which two faulty chips collide.
    ///
    /// SECDED corrects per 64-bit word (1 column). Our Chipkill packs a
    /// 64-byte line into four 18-symbol RS beats of 16 data bytes, so one
    /// codeword spans 2 word columns. SYNERGY and IVEC detect with a
    /// line-granular MAC and reconstruct whole chips per *line*: two chips
    /// corrupted anywhere in the same 8-column line are unrecoverable even
    /// when their word columns differ. The differential campaign
    /// (`synergy-campaign`) surfaced this: the original word-granular
    /// pairwise test under-counted functional Chipkill/SYNERGY failures
    /// for small-footprint fault pairs sharing a codeword.
    pub fn correction_granule_cols(self) -> u32 {
        match self {
            EccPolicy::None | EccPolicy::Secded => 1,
            EccPolicy::Chipkill => 2,
            EccPolicy::Synergy | EccPolicy::Ivec => 8,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EccPolicy::None => "No-ECC",
            EccPolicy::Secded => "SECDED",
            EccPolicy::Chipkill => "Chipkill",
            EccPolicy::Synergy => "Synergy",
            EccPolicy::Ivec => "IVEC",
        }
    }

    /// Evaluates a device's fault history. Returns the time (hours) of the
    /// first uncorrectable error, or `None` if the device survives.
    ///
    /// `lifetime_hours` bounds activity windows; `scrub_interval_hours`
    /// (when set) clears *transient* faults at the next scrub boundary.
    pub fn first_failure(
        self,
        faults: &[Fault],
        lifetime_hours: f64,
        scrub_interval_hours: Option<f64>,
    ) -> Option<f64> {
        let mut first: Option<f64> = None;
        let mut update = |t: f64| {
            if first.is_none_or(|f| t < f) {
                first = Some(t);
            }
        };

        // Single-fault failures.
        for f in faults {
            let fatal_alone = match self {
                EccPolicy::None => true,
                EccPolicy::Secded => f.mode.defeats_secded(),
                // Symbol/chip-level schemes contain any single-chip fault.
                EccPolicy::Chipkill | EccPolicy::Synergy | EccPolicy::Ivec => false,
            };
            if fatal_alone {
                update(f.at_hours);
            }
        }

        // Pairwise collisions.
        for (i, a) in faults.iter().enumerate() {
            for b in &faults[i + 1..] {
                let spatial = match self {
                    EccPolicy::None => false, // already fatal singly
                    EccPolicy::Secded => {
                        if a.chip == b.chip {
                            // Two errors in the same word of one chip, unless
                            // they pin the *same* bit (then it is one error).
                            a.words_intersect(b)
                                && !(a.bit.is_some() && a.bit == b.bit)
                        } else {
                            a.words_intersect(b)
                        }
                    }
                    EccPolicy::Chipkill | EccPolicy::Synergy | EccPolicy::Ivec => {
                        a.chip != b.chip
                            && a.granules_intersect(b, self.correction_granule_cols())
                    }
                };
                if !spatial {
                    continue;
                }
                if let Some(t) =
                    coactive_from(a, b, lifetime_hours, scrub_interval_hours)
                {
                    update(t);
                }
            }
        }
        first
    }
}

/// When do two faults first coexist (if ever)?
fn coactive_from(
    a: &Fault,
    b: &Fault,
    lifetime_hours: f64,
    scrub_interval_hours: Option<f64>,
) -> Option<f64> {
    let end = |f: &Fault| -> f64 {
        if f.permanent {
            lifetime_hours
        } else {
            match scrub_interval_hours {
                Some(s) => (((f.at_hours / s).floor() + 1.0) * s).min(lifetime_hours),
                None => lifetime_hours,
            }
        }
    };
    let start = a.at_hours.max(b.at_hours);
    let finish = end(a).min(end(b));
    (start < finish).then_some(start)
}

impl core::fmt::Display for EccPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChipGeometry, FaultMode};
    use rand::SeedableRng;

    const LIFE: f64 = 61362.0; // 7 years in hours

    fn mk(chip: usize, mode: FaultMode, at: f64, permanent: bool) -> Fault {
        let mut rng = rand::rngs::StdRng::seed_from_u64(chip as u64 * 31 + at as u64);
        Fault::sample(&mut rng, &ChipGeometry::default(), chip, mode, permanent, at)
    }

    #[test]
    fn no_faults_no_failure() {
        for p in [EccPolicy::None, EccPolicy::Secded, EccPolicy::Chipkill, EccPolicy::Synergy] {
            assert_eq!(p.first_failure(&[], LIFE, None), None);
        }
    }

    #[test]
    fn single_bit_correctable_by_all_ecc() {
        let f = [mk(0, FaultMode::SingleBit, 100.0, true)];
        assert_eq!(EccPolicy::Secded.first_failure(&f, LIFE, None), None);
        assert_eq!(EccPolicy::Chipkill.first_failure(&f, LIFE, None), None);
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), None);
        // But fatal with no ECC at all.
        assert_eq!(EccPolicy::None.first_failure(&f, LIFE, None), Some(100.0));
    }

    #[test]
    fn chip_failure_defeats_secded_not_synergy() {
        let f = [mk(2, FaultMode::SingleBank, 50.0, true)];
        assert_eq!(EccPolicy::Secded.first_failure(&f, LIFE, None), Some(50.0));
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), None);
        assert_eq!(EccPolicy::Chipkill.first_failure(&f, LIFE, None), None);
    }

    #[test]
    fn two_whole_chip_faults_defeat_chip_level_schemes() {
        let f = [
            mk(1, FaultMode::MultiBank, 10.0, true),
            mk(5, FaultMode::MultiBank, 20.0, true),
        ];
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), Some(20.0));
        assert_eq!(EccPolicy::Chipkill.first_failure(&f, LIFE, None), Some(20.0));
    }

    #[test]
    fn same_chip_double_fault_is_fine_for_synergy() {
        // Two faults confined to one chip: still a 1-of-9 correction.
        let f = [
            mk(3, FaultMode::SingleRow, 10.0, true),
            mk(3, FaultMode::SingleBank, 20.0, true),
        ];
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), None);
    }

    #[test]
    fn disjoint_chips_disjoint_words_survive() {
        let mut a = mk(0, FaultMode::SingleBit, 1.0, true);
        let mut b = mk(1, FaultMode::SingleBit, 2.0, true);
        a.bank = Some(0);
        b.bank = Some(1); // different banks: words never intersect
        assert_eq!(EccPolicy::Synergy.first_failure(&[a, b], LIFE, None), None);
        assert_eq!(EccPolicy::Secded.first_failure(&[a, b], LIFE, None), None);
    }

    #[test]
    fn secded_two_bits_same_word_fail() {
        let a = mk(0, FaultMode::SingleBit, 5.0, true);
        let mut b = mk(1, FaultMode::SingleBit, 9.0, true);
        b.bank = a.bank;
        b.row = a.row;
        b.col = a.col;
        assert_eq!(EccPolicy::Secded.first_failure(&[a, b], LIFE, None), Some(9.0));
        // Same chip, same word, different bits: also fatal.
        let mut c = a;
        c.chip = a.chip;
        c.bit = Some((a.bit.unwrap() + 1) % 8);
        c.at_hours = 30.0;
        assert_eq!(EccPolicy::Secded.first_failure(&[a, c], LIFE, None), Some(30.0));
        // Same chip, same exact bit: one error, correctable.
        let mut d = a;
        d.at_hours = 40.0;
        assert_eq!(EccPolicy::Secded.first_failure(&[a, d], LIFE, None), None);
    }

    #[test]
    fn codeword_granularity_separates_the_schemes() {
        // Two single-bit faults on different chips, same bank/row, in word
        // columns 4 and 5: different SECDED words, the same Chipkill beat,
        // the same SYNERGY line.
        let mut a = mk(0, FaultMode::SingleBit, 10.0, true);
        let mut b = mk(1, FaultMode::SingleBit, 20.0, true);
        a.bank = Some(0);
        a.row = Some(100);
        a.col = Some(4);
        b.bank = Some(0);
        b.row = Some(100);
        b.col = Some(5);
        let f = [a, b];
        assert_eq!(EccPolicy::Secded.first_failure(&f, LIFE, None), None);
        assert_eq!(EccPolicy::Chipkill.first_failure(&f, LIFE, None), Some(20.0));
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), Some(20.0));
        // Columns 3 and 4: different beats, same line — only the
        // line-granular schemes fail.
        let mut c = b;
        c.col = Some(3);
        let f = [a, c];
        assert_eq!(EccPolicy::Chipkill.first_failure(&f, LIFE, None), None);
        assert_eq!(EccPolicy::Synergy.first_failure(&f, LIFE, None), Some(20.0));
        assert_eq!(EccPolicy::Ivec.first_failure(&f, LIFE, None), Some(20.0));
        // Columns 4 and 13: different lines — everyone survives.
        let mut d = b;
        d.col = Some(13);
        let f = [a, d];
        for p in [EccPolicy::Secded, EccPolicy::Chipkill, EccPolicy::Synergy] {
            assert_eq!(p.first_failure(&f, LIFE, None), None, "{p}");
        }
        assert_eq!(EccPolicy::Secded.correction_granule_cols(), 1);
        assert_eq!(EccPolicy::Chipkill.correction_granule_cols(), 2);
        assert_eq!(EccPolicy::Synergy.correction_granule_cols(), 8);
    }

    #[test]
    fn scrubbing_prevents_transient_collisions() {
        // Transient fault at t=10 scrubbed at t=24 (daily scrub);
        // second fault arrives at t=30 — no co-activity.
        let a = mk(1, FaultMode::MultiBank, 10.0, false);
        let b = mk(2, FaultMode::MultiBank, 30.0, true);
        assert_eq!(EccPolicy::Synergy.first_failure(&[a, b], LIFE, Some(24.0)), None);
        // Without scrubbing they do collide.
        assert_eq!(EccPolicy::Synergy.first_failure(&[a, b], LIFE, None), Some(30.0));
        // With a slower scrub (weekly), they still collide.
        assert_eq!(
            EccPolicy::Synergy.first_failure(&[a, b], LIFE, Some(168.0)),
            Some(30.0)
        );
    }

    #[test]
    fn domain_sizes() {
        assert_eq!(EccPolicy::Secded.domain_chips(), 9);
        assert_eq!(EccPolicy::Synergy.domain_chips(), 9);
        assert_eq!(EccPolicy::Chipkill.domain_chips(), 18);
        assert_eq!(EccPolicy::Ivec.domain_chips(), 16);
        assert_eq!(EccPolicy::None.domain_chips(), 8);
    }

    #[test]
    fn earliest_failure_reported() {
        let f = [
            mk(0, FaultMode::SingleBank, 500.0, true),
            mk(1, FaultMode::SingleRow, 100.0, true),
        ];
        assert_eq!(EccPolicy::Secded.first_failure(&f, LIFE, None), Some(100.0));
    }
}
