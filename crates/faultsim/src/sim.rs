//! The Monte-Carlo reliability engine.
//!
//! The paper runs FAULTSIM over one billion devices for a 7-year lifetime
//! (§V). We reproduce that scale with two standard accelerations:
//!
//! * **Conditioned sampling** — the number of faults per device is Poisson
//!   with a small mean (~0.037 for 9 chips over 7 years), so the ~96% of
//!   devices with zero faults are dispatched with a single random draw.
//! * **Parallelism** — devices are independent; they are decomposed into
//!   fixed-size shards whose seeds derive from the shard's first device
//!   index (never from the worker count), worker threads pull shards from a
//!   shared queue, and partial results merge in shard order. Results are
//!   therefore **bit-identical** for any thread count at a fixed seed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::{ChipGeometry, Fault};
use crate::model::FaultModel;
use crate::policy::EccPolicy;

/// Hours in a (Julian) year.
pub const HOURS_PER_YEAR: f64 = 365.25 * 24.0;

/// Monte-Carlo parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimParams {
    /// Device lifetime in years (paper: 7).
    pub years: f64,
    /// Number of simulated devices.
    pub devices: u64,
    /// RNG seed (deterministic results for a given seed and device count).
    pub seed: u64,
    /// Optional scrub interval in hours (clears transient faults).
    pub scrub_interval_hours: Option<f64>,
    /// Worker threads (0 = use available parallelism).
    pub threads: usize,
    /// Chip geometry.
    pub geometry: ChipGeometry,
}

impl Default for SimParams {
    fn default() -> Self {
        Self {
            years: 7.0,
            devices: 1_000_000,
            seed: 0xFA017,
            scrub_interval_hours: None,
            threads: 0,
            geometry: ChipGeometry::default(),
        }
    }
}

/// Aggregate result of a reliability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityResult {
    /// Devices simulated.
    pub devices: u64,
    /// Devices that hit an uncorrectable error within the lifetime.
    pub failures: u64,
    /// Devices that experienced at least one fault.
    pub devices_with_faults: u64,
    /// Probability of device failure over the lifetime.
    pub failure_probability: f64,
    /// Equivalent FIT rate (failures per billion device-hours).
    pub fit: f64,
    /// Mean time of first failure among failed devices, in hours.
    pub mean_time_to_failure_hours: f64,
}

impl ReliabilityResult {
    /// Improvement factor of `self` over `other`
    /// (how many times lower `self`'s failure probability is).
    pub fn improvement_over(&self, other: &ReliabilityResult) -> f64 {
        if self.failure_probability == 0.0 {
            f64::INFINITY
        } else {
            other.failure_probability / self.failure_probability
        }
    }
}

impl synergy_obs::Observe for ReliabilityResult {
    fn observe(&self, prefix: &str, registry: &mut synergy_obs::MetricRegistry) {
        use synergy_obs::metric_name;
        registry.set_counter(&metric_name(prefix, "devices"), self.devices);
        registry.set_counter(&metric_name(prefix, "failures"), self.failures);
        registry.set_counter(
            &metric_name(prefix, "devices_with_faults"),
            self.devices_with_faults,
        );
        registry.set_gauge(
            &metric_name(prefix, "failure_probability"),
            self.failure_probability,
        );
        registry.set_gauge(&metric_name(prefix, "fit"), self.fit);
        registry.set_gauge(
            &metric_name(prefix, "mttf_hours"),
            self.mean_time_to_failure_hours,
        );
    }
}

/// Devices per deterministic work shard. The shard decomposition — and
/// with it every shard's RNG seed — depends only on the device count, so
/// any worker-thread count reproduces the same result bit for bit.
pub const SHARD_DEVICES: u64 = 16_384;

/// Runs the Monte Carlo for one ECC policy.
pub fn simulate(policy: EccPolicy, model: &FaultModel, params: &SimParams) -> ReliabilityResult {
    let threads = if params.threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
    } else {
        params.threads
    };
    let shards = params.devices.div_ceil(SHARD_DEVICES) as usize;
    let workers = threads.min(shards).max(1);

    // Shard slots are filled by whichever worker claims the shard; the
    // merge below walks them in shard order, so even the floating-point
    // time-to-failure sum is order-deterministic.
    let slots: Mutex<Vec<(u64, u64, f64)>> = Mutex::new(vec![(0, 0, 0.0); shards]);
    let next = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shards {
                    break;
                }
                let start = i as u64 * SHARD_DEVICES;
                let count = SHARD_DEVICES.min(params.devices - start);
                let r = run_batch(policy, model, params, start, count);
                slots.lock().expect("shard slots poisoned")[i] = r;
            });
        }
    })
    .expect("thread scope");

    let results = slots.into_inner().expect("shard slots poisoned");
    let failures: u64 = results.iter().map(|r| r.0).sum();
    let with_faults: u64 = results.iter().map(|r| r.1).sum();
    let ttf_sum: f64 = results.iter().map(|r| r.2).sum();

    let p = failures as f64 / params.devices as f64;
    let hours = params.years * HOURS_PER_YEAR;
    ReliabilityResult {
        devices: params.devices,
        failures,
        devices_with_faults: with_faults,
        failure_probability: p,
        fit: p / hours * 1e9,
        mean_time_to_failure_hours: if failures == 0 { 0.0 } else { ttf_sum / failures as f64 },
    }
}

/// Convenience: simulate every Figure 11 policy and return
/// `(policy, result)` pairs.
pub fn simulate_all(model: &FaultModel, params: &SimParams) -> Vec<(EccPolicy, ReliabilityResult)> {
    [EccPolicy::Secded, EccPolicy::Chipkill, EccPolicy::Synergy]
        .into_iter()
        .map(|p| (p, simulate(p, model, params)))
        .collect()
}

/// Runs `count` devices with a shard-specific deterministic RNG (seeded by
/// the shard's first device index), returning
/// `(failures, devices_with_faults, sum_of_failure_times)`.
fn run_batch(
    policy: EccPolicy,
    model: &FaultModel,
    params: &SimParams,
    batch_start: u64,
    count: u64,
) -> (u64, u64, f64) {
    let mut rng = StdRng::seed_from_u64(params.seed ^ batch_start.wrapping_mul(0x9E3779B97F4A7C15));
    let hours = params.years * HOURS_PER_YEAR;
    let chips = policy.domain_chips();
    let lambda = chips as f64 * model.total_fit() * 1e-9 * hours;
    let exp_neg_lambda = (-lambda).exp();

    let mut failures = 0u64;
    let mut with_faults = 0u64;
    let mut ttf_sum = 0.0;
    let mut faults: Vec<Fault> = Vec::with_capacity(4);

    for _ in 0..count {
        let k = poisson(&mut rng, exp_neg_lambda);
        if k == 0 {
            continue;
        }
        with_faults += 1;
        faults.clear();
        for _ in 0..k {
            let chip = rng.gen_range(0..chips);
            let (mode, permanent) = model.sample_mode(&mut rng);
            let at = rng.gen_range(0.0..hours);
            faults.push(Fault::sample(&mut rng, &params.geometry, chip, mode, permanent, at));
        }
        if let Some(t) = policy.first_failure(&faults, hours, params.scrub_interval_hours) {
            failures += 1;
            ttf_sum += t;
        }
    }
    (failures, with_faults, ttf_sum)
}

/// Knuth's Poisson sampler — ideal for small λ (λ ≈ 0.04 here, so the
/// expected iteration count is barely above 1). Takes `exp(-λ)`
/// precomputed so per-device dispatch stays one multiply + one compare on
/// the (dominant) zero-fault path. Shared with `synergy-fleet`, whose
/// per-DIMM fault arrivals use the same conditioned-sampling trick.
pub fn poisson<R: Rng>(rng: &mut R, exp_neg_lambda: f64) -> u32 {
    let mut k = 0u32;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= exp_neg_lambda {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params(devices: u64) -> SimParams {
        SimParams { devices, threads: 2, ..Default::default() }
    }

    #[test]
    fn deterministic_across_runs() {
        let m = FaultModel::sridharan();
        let p = quick_params(50_000);
        let a = simulate(EccPolicy::Secded, &m, &p);
        let b = simulate(EccPolicy::Secded, &m, &p);
        assert_eq!(a.failures, b.failures);
        assert_eq!(a.devices_with_faults, b.devices_with_faults);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The shard decomposition is fixed (SHARD_DEVICES-sized shards seeded
        // by their first device index) and shards are merged in shard order,
        // so results are bit-identical regardless of worker count.
        let m = FaultModel::sridharan();
        // Spans multiple shards so the work queue actually interleaves.
        let devices = 3 * SHARD_DEVICES + 1_000;
        let baseline = {
            let p = SimParams { devices, threads: 1, ..Default::default() };
            simulate(EccPolicy::Secded, &m, &p)
        };
        for threads in [2usize, 8] {
            let p = SimParams { devices, threads, ..Default::default() };
            let r = simulate(EccPolicy::Secded, &m, &p);
            assert_eq!(baseline, r, "threads={threads} diverged from threads=1");
        }
    }

    #[test]
    fn fault_incidence_matches_expectation() {
        let m = FaultModel::sridharan();
        let p = quick_params(200_000);
        let r = simulate(EccPolicy::Secded, &m, &p);
        // P(≥1 fault) = 1 - e^-λ with λ = 9 chips × 66.1 FIT × 61362 h.
        let lambda = 9.0 * m.total_fit() * 1e-9 * 7.0 * HOURS_PER_YEAR;
        let expected = 1.0 - (-lambda).exp();
        let measured = r.devices_with_faults as f64 / r.devices as f64;
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn reliability_ordering_secded_chipkill_synergy() {
        // The Figure 11 ordering with a scaled-up fault rate so modest
        // device counts give tight estimates.
        let m = FaultModel::sridharan().scaled(20.0);
        let p = quick_params(200_000);
        let secded = simulate(EccPolicy::Secded, &m, &p);
        let chipkill = simulate(EccPolicy::Chipkill, &m, &p);
        let synergy = simulate(EccPolicy::Synergy, &m, &p);
        assert!(
            secded.failure_probability > chipkill.failure_probability,
            "secded {} vs chipkill {}",
            secded.failure_probability,
            chipkill.failure_probability
        );
        assert!(
            chipkill.failure_probability > synergy.failure_probability,
            "chipkill {} vs synergy {}",
            chipkill.failure_probability,
            synergy.failure_probability
        );
        // And everything beats no ECC.
        let none = simulate(EccPolicy::None, &m, &p);
        assert!(none.failure_probability > secded.failure_probability);
    }

    #[test]
    fn secded_failure_rate_tracks_uncorrectable_fits() {
        let m = FaultModel::sridharan();
        let p = quick_params(300_000);
        let r = simulate(EccPolicy::Secded, &m, &p);
        // Dominant term: single faults whose mode defeats SECDED
        // (~26.3 FIT/chip × 9 chips over 7 years ≈ 1.45e-2).
        let expected = 9.0 * 26.3e-9 * 7.0 * HOURS_PER_YEAR;
        assert!(
            (r.failure_probability - expected).abs() / expected < 0.15,
            "measured {}, expected ~{expected}",
            r.failure_probability
        );
    }

    #[test]
    fn scrubbing_reduces_synergy_failures() {
        let m = FaultModel::sridharan().scaled(50.0);
        let base = quick_params(100_000);
        let scrubbed = SimParams { scrub_interval_hours: Some(24.0), ..base.clone() };
        let without = simulate(EccPolicy::Synergy, &m, &base);
        let with = simulate(EccPolicy::Synergy, &m, &scrubbed);
        assert!(
            with.failure_probability <= without.failure_probability,
            "scrubbed {} vs unscrubbed {}",
            with.failure_probability,
            without.failure_probability
        );
    }

    #[test]
    fn improvement_helper() {
        let a = ReliabilityResult {
            devices: 1,
            failures: 0,
            devices_with_faults: 0,
            failure_probability: 0.001,
            fit: 0.0,
            mean_time_to_failure_hours: 0.0,
        };
        let b = ReliabilityResult { failure_probability: 0.1, ..a };
        assert!((a.improvement_over(&b) - 100.0).abs() < 1e-9);
    }

}
