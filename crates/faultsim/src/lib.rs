//! Monte-Carlo DRAM reliability simulator — the FAULTSIM substitute.
//!
//! The paper evaluates reliability (Figure 11) with FAULTSIM \[29\]: Monte
//! Carlo fault injection over a billion devices and a 7-year lifetime,
//! using the real-world DRAM failure rates of Sridharan & Liberty (Table
//! I). This crate reproduces that methodology from scratch:
//!
//! * [`fault`] — faults as address-range regions within a chip (bank /
//!   row / column / bit, pinned or wildcarded), with the range-intersection
//!   test that decides when two faults corrupt the same codeword.
//! * [`model`] — the Table I FIT rates, scalable for accelerated studies.
//! * [`policy`] — evaluation rules for SECDED (1 bit of 72), Chipkill
//!   (1 chip of 18), SYNERGY (1 chip of 9) and IVEC (1 chip of 16).
//! * [`sim`] — the parallel, conditioned-sampling Monte Carlo engine.
//! * [`schedule`] — cycle-exact fault schedules consumed by the timing
//!   simulator in `synergy-core` (the §IV-A degraded-mode lifecycle).
//!
//! # Example: a miniature Figure 11
//!
//! ```
//! use synergy_faultsim::{EccPolicy, FaultModel, SimParams, simulate};
//!
//! let model = FaultModel::sridharan().scaled(50.0); // accelerate for the doctest
//! let params = SimParams { devices: 20_000, ..Default::default() };
//! let secded = simulate(EccPolicy::Secded, &model, &params);
//! let synergy = simulate(EccPolicy::Synergy, &model, &params);
//! assert!(synergy.failure_probability < secded.failure_probability);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod model;
pub mod policy;
pub mod schedule;
pub mod sim;

pub use fault::{ChipGeometry, Fault, FaultMode, LineRegion};
pub use model::{FaultModel, ModeRate};
pub use schedule::{FaultSchedule, ScheduledFault};
pub use policy::EccPolicy;
pub use sim::{
    poisson, simulate, simulate_all, ReliabilityResult, SimParams, HOURS_PER_YEAR, SHARD_DEVICES,
};
