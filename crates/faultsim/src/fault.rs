//! DRAM fault representation and range-intersection logic.
//!
//! Following the FAULTSIM methodology \[29\], a fault is a region of one
//! DRAM chip: each address dimension (bank, row, column, bit) is either
//! pinned to a value or wildcarded. Two faults collide when every
//! dimension intersects — the condition under which two chips contribute
//! simultaneous errors to the same ECC codeword.

/// Per-chip geometry used to scope fault regions (x8 DDR3, Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipGeometry {
    /// Banks per chip.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Word positions (cacheline beats) per row.
    pub cols: u32,
    /// Bits the chip contributes per word (x8 device → 8).
    pub bits_per_word: u32,
}

impl Default for ChipGeometry {
    fn default() -> Self {
        Self { banks: 8, rows: 65536, cols: 128, bits_per_word: 8 }
    }
}

/// The DRAM failure modes of Table I (Sridharan & Liberty field study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultMode {
    /// One bit.
    SingleBit,
    /// One word (the chip's whole contribution to one codeword).
    SingleWord,
    /// One column: one bit position across every row of a bank.
    SingleColumn,
    /// One row: the chip's contribution to every word of one row.
    SingleRow,
    /// One whole bank.
    SingleBank,
    /// Multiple banks — modeled as the whole chip.
    MultiBank,
    /// Multiple ranks (shared-circuitry fault) — modeled as the whole chip
    /// within the evaluated rank.
    MultiRank,
}

impl FaultMode {
    /// All modes, Table I order.
    pub const ALL: [FaultMode; 7] = [
        FaultMode::SingleBit,
        FaultMode::SingleWord,
        FaultMode::SingleColumn,
        FaultMode::SingleRow,
        FaultMode::SingleBank,
        FaultMode::MultiBank,
        FaultMode::MultiRank,
    ];

    /// True when a single fault of this mode corrupts ≥ 2 bits of some
    /// 72-bit SECDED word — i.e. SECDED alone cannot correct it.
    ///
    /// Single-bit and single-column faults put at most one bit in any
    /// word; everything else takes out the chip's whole 8-bit contribution
    /// to at least one word.
    pub fn defeats_secded(self) -> bool {
        !matches!(self, FaultMode::SingleBit | FaultMode::SingleColumn)
    }
}

impl core::fmt::Display for FaultMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FaultMode::SingleBit => "single-bit",
            FaultMode::SingleWord => "single-word",
            FaultMode::SingleColumn => "single-column",
            FaultMode::SingleRow => "single-row",
            FaultMode::SingleBank => "single-bank",
            FaultMode::MultiBank => "multi-bank",
            FaultMode::MultiRank => "multi-rank",
        };
        f.write_str(s)
    }
}

/// A cacheline-sized window of word columns within one bank row — the
/// coordinates of one accessed line. Fault-injection campaigns pin faults
/// inside a `LineRegion` so every sampled fault is guaranteed to touch the
/// line under test (see [`Fault::sample_in_line`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineRegion {
    /// Bank holding the line.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// First word column of the line (line-aligned).
    pub col_base: u32,
    /// Word columns per line (8 for a 64-byte line of 64-bit words).
    pub cols: u32,
}

impl LineRegion {
    /// Samples a line-aligned region within `geo`.
    pub fn sample<R: rand::Rng>(rng: &mut R, geo: &ChipGeometry, cols: u32) -> Self {
        let slots = (geo.cols / cols).max(1);
        Self {
            bank: rng.gen_range(0..geo.banks),
            row: rng.gen_range(0..geo.rows),
            col_base: rng.gen_range(0..slots) * cols,
            cols,
        }
    }
}

/// A fault region within one chip. `None` dimensions are wildcards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// Which chip of the correction domain (0-based).
    pub chip: usize,
    /// The failure mode that produced this region.
    pub mode: FaultMode,
    /// Whether the fault is permanent (persists forever) or transient
    /// (cleared by scrubbing, when enabled).
    pub permanent: bool,
    /// Arrival time in hours since deployment.
    pub at_hours: f64,
    /// Pinned bank, or all banks.
    pub bank: Option<u32>,
    /// Pinned row, or all rows.
    pub row: Option<u32>,
    /// Pinned column, or all columns.
    pub col: Option<u32>,
    /// Pinned bit within the chip's word contribution, or all bits.
    pub bit: Option<u32>,
}

impl Fault {
    /// Builds the fault region for `mode` at a uniformly random location.
    pub fn sample<R: rand::Rng>(
        rng: &mut R,
        geo: &ChipGeometry,
        chip: usize,
        mode: FaultMode,
        permanent: bool,
        at_hours: f64,
    ) -> Self {
        let bank = Some(rng.gen_range(0..geo.banks));
        let row = Some(rng.gen_range(0..geo.rows));
        let col = Some(rng.gen_range(0..geo.cols));
        let bit = Some(rng.gen_range(0..geo.bits_per_word));
        let (bank, row, col, bit) = match mode {
            FaultMode::SingleBit => (bank, row, col, bit),
            FaultMode::SingleWord => (bank, row, col, None),
            FaultMode::SingleColumn => (bank, None, col, bit),
            FaultMode::SingleRow => (bank, row, None, None),
            FaultMode::SingleBank => (bank, None, None, None),
            FaultMode::MultiBank | FaultMode::MultiRank => (None, None, None, None),
        };
        Self { chip, mode, permanent, at_hours, bank, row, col, bit }
    }

    /// Builds the fault region for `mode` with every per-mode pinned
    /// dimension drawn from inside `line`, so the fault is guaranteed to
    /// cover that line. Wildcard dimensions stay wildcards exactly as in
    /// [`Fault::sample`] — a `SingleColumn` fault still spans every row,
    /// but its pinned column falls inside the line's window.
    ///
    /// Differential fault-injection campaigns use this to generate
    /// scenarios whose functional injection (into one concrete stored
    /// line) and analytic evaluation (range intersection) describe the
    /// same physical event.
    pub fn sample_in_line<R: rand::Rng>(
        rng: &mut R,
        geo: &ChipGeometry,
        chip: usize,
        mode: FaultMode,
        permanent: bool,
        at_hours: f64,
        line: &LineRegion,
    ) -> Self {
        let mut f = Self::sample(rng, geo, chip, mode, permanent, at_hours);
        if f.bank.is_some() {
            f.bank = Some(line.bank);
        }
        if f.row.is_some() {
            f.row = Some(line.row);
        }
        if f.col.is_some() {
            f.col = Some(line.col_base + rng.gen_range(0..line.cols));
        }
        f
    }

    /// True when the two regions share at least one *word* address
    /// (bank, row, column) — the collision condition for symbol-based
    /// codes, where two bad chips in one codeword are fatal.
    pub fn words_intersect(&self, other: &Fault) -> bool {
        self.granules_intersect(other, 1)
    }

    /// True when the two regions share at least one correction *granule* —
    /// a run of `granule_cols` consecutive word columns within one
    /// (bank, row). A granule is the span of one correction codeword:
    /// 1 column for per-word SECDED, 2 columns for a beat-level Chipkill
    /// symbol code, 8 columns (a whole cacheline) for SYNERGY's
    /// line-granular MAC + RAID-3 flow. Two chips failing anywhere inside
    /// the same granule defeat a single-symbol-correcting code even when
    /// the word columns differ — the differential campaign caught exactly
    /// this divergence between word-granular analytics and the functional
    /// decoders.
    pub fn granules_intersect(&self, other: &Fault, granule_cols: u32) -> bool {
        let g = granule_cols.max(1);
        dim_intersects(self.bank, other.bank)
            && dim_intersects(self.row, other.row)
            && dim_intersects(self.col.map(|c| c / g), other.col.map(|c| c / g))
    }

    /// True when the two regions share at least one *bit* — only
    /// meaningful for same-chip faults under SECDED.
    pub fn bits_intersect(&self, other: &Fault) -> bool {
        self.words_intersect(other) && dim_intersects(self.bit, other.bit)
    }
}

#[inline]
fn dim_intersects(a: Option<u32>, b: Option<u32>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x == y,
        _ => true, // a wildcard intersects everything
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    fn fault(chip: usize, mode: FaultMode) -> Fault {
        Fault::sample(&mut rng(), &ChipGeometry::default(), chip, mode, true, 0.0)
    }

    #[test]
    fn mode_secded_classification_matches_paper() {
        // §II-B: SECDED covers single-bit (and per-word-disjoint column)
        // faults — about half the FIT budget — and nothing larger.
        assert!(!FaultMode::SingleBit.defeats_secded());
        assert!(!FaultMode::SingleColumn.defeats_secded());
        for m in [
            FaultMode::SingleWord,
            FaultMode::SingleRow,
            FaultMode::SingleBank,
            FaultMode::MultiBank,
            FaultMode::MultiRank,
        ] {
            assert!(m.defeats_secded(), "{m}");
        }
    }

    #[test]
    fn sampled_region_shape_per_mode() {
        let f = fault(0, FaultMode::SingleBit);
        assert!(f.bank.is_some() && f.row.is_some() && f.col.is_some() && f.bit.is_some());
        let f = fault(0, FaultMode::SingleColumn);
        assert!(f.row.is_none() && f.col.is_some());
        let f = fault(0, FaultMode::SingleRow);
        assert!(f.row.is_some() && f.col.is_none());
        let f = fault(0, FaultMode::SingleBank);
        assert!(f.bank.is_some() && f.row.is_none() && f.col.is_none());
        let f = fault(0, FaultMode::MultiBank);
        assert!(f.bank.is_none());
    }

    #[test]
    fn whole_chip_fault_intersects_everything() {
        let whole = fault(0, FaultMode::MultiBank);
        for mode in FaultMode::ALL {
            let other = fault(1, mode);
            assert!(whole.words_intersect(&other), "{mode}");
        }
    }

    #[test]
    fn pinned_dimensions_must_match() {
        let mut a = fault(0, FaultMode::SingleBit);
        let mut b = fault(1, FaultMode::SingleBit);
        a.bank = Some(0);
        a.row = Some(10);
        a.col = Some(5);
        b.bank = Some(0);
        b.row = Some(10);
        b.col = Some(5);
        assert!(a.words_intersect(&b));
        b.col = Some(6);
        assert!(!a.words_intersect(&b));
    }

    #[test]
    fn row_and_column_faults_cross_at_one_word() {
        // A row fault (row pinned, col wild) and a column fault (col
        // pinned, row wild) in the same bank always share one word.
        let mut row_f = fault(0, FaultMode::SingleRow);
        let mut col_f = fault(1, FaultMode::SingleColumn);
        row_f.bank = Some(3);
        col_f.bank = Some(3);
        assert!(row_f.words_intersect(&col_f));
        col_f.bank = Some(4);
        assert!(!row_f.words_intersect(&col_f));
    }

    #[test]
    fn sample_in_line_always_covers_the_line() {
        let geo = ChipGeometry::default();
        let mut r = rng();
        for _ in 0..200 {
            let line = LineRegion::sample(&mut r, &geo, 8);
            for mode in FaultMode::ALL {
                let f = Fault::sample_in_line(&mut r, &geo, 0, mode, true, 0.0, &line);
                // The fault intersects a fully pinned word inside the line.
                let probe = Fault {
                    chip: 1,
                    mode: FaultMode::SingleBit,
                    permanent: true,
                    at_hours: 0.0,
                    bank: Some(line.bank),
                    row: Some(line.row),
                    col: Some(f.col.unwrap_or(line.col_base)),
                    bit: None,
                };
                assert!(f.words_intersect(&probe), "{mode} must cover its line");
                if let Some(c) = f.col {
                    assert!(
                        c >= line.col_base && c < line.col_base + line.cols,
                        "{mode}: col {c} outside line at {}",
                        line.col_base
                    );
                }
                assert_eq!(f.bank.is_some(), Fault::sample(&mut r, &geo, 0, mode, true, 0.0).bank.is_some());
            }
        }
    }

    #[test]
    fn granule_intersection_coarsens_word_intersection() {
        let mut a = fault(0, FaultMode::SingleBit);
        let mut b = fault(1, FaultMode::SingleBit);
        a.bank = Some(0);
        a.row = Some(7);
        a.col = Some(4);
        b.bank = Some(0);
        b.row = Some(7);
        b.col = Some(5);
        // Different words: no word-level collision, but the same 2-column
        // beat and the same 8-column line.
        assert!(!a.words_intersect(&b));
        assert!(a.granules_intersect(&b, 2));
        assert!(a.granules_intersect(&b, 8));
        // Adjacent columns in different beats still share the line granule.
        b.col = Some(3);
        assert!(!a.granules_intersect(&b, 2));
        assert!(a.granules_intersect(&b, 8));
        // Different lines: nothing intersects.
        b.col = Some(13);
        assert!(!a.granules_intersect(&b, 8));
        // Wildcards intersect at any granularity.
        b.col = None;
        assert!(a.granules_intersect(&b, 1));
        assert!(a.granules_intersect(&b, 8));
    }

    #[test]
    fn bit_intersection_refines_word_intersection() {
        let a = fault(0, FaultMode::SingleBit);
        let mut b = fault(0, FaultMode::SingleBit);
        b.bank = a.bank;
        b.row = a.row;
        b.col = a.col;
        b.bit = Some((a.bit.unwrap() + 1) % 8);
        assert!(a.words_intersect(&b));
        assert!(!a.bits_intersect(&b));
        b.bit = a.bit;
        assert!(a.bits_intersect(&b));
    }
}
