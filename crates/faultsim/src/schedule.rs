//! Schedulable runtime faults for the timing simulator.
//!
//! The Monte-Carlo half of this crate reasons about fault *arrival* over a
//! 7-year lifetime; the performance simulator needs the same vocabulary at
//! *cycle* granularity: "chip 3 fails permanently at memory cycle 50 000
//! and execution continues". A [`FaultSchedule`] is that bridge — an
//! ordered list of [`ScheduledFault`]s which `synergy-core` applies at
//! exact memory-bus cycles, driving the secure engine through the paper's
//! §IV-A degraded-mode lifecycle (detect → diagnose → track).
//!
//! Schedules are deliberately immutable after construction: a schedule is
//! part of a simulation *configuration*, shared (cloned) between the
//! healthy/degraded cells of a sweep, so the consuming loop keeps its own
//! cursor and the same schedule value always produces the same run.

use crate::fault::FaultMode;

/// One fault injection at an exact simulator cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// Memory-bus cycle at which the fault manifests.
    pub at_mem_cycle: u64,
    /// Which chip of the 9-chip correction domain fails (0–7 data, 8 ECC).
    pub chip: usize,
    /// Failure mode. The timing model treats every mode that defeats
    /// SECDED as a whole-chip outage — the paper's degraded-mode scenario;
    /// the mode is kept so campaigns can label sub-chip injections too.
    pub mode: FaultMode,
    /// Permanent (persists for the rest of the run). Transient faults are
    /// accepted in the descriptor but the timing lifecycle models the
    /// permanent case the paper evaluates.
    pub permanent: bool,
}

impl ScheduledFault {
    /// A permanent whole-chip failure at `at_mem_cycle` — the scenario of
    /// §IV-A's permanent-fault mitigation.
    pub fn chip_failure(at_mem_cycle: u64, chip: usize) -> Self {
        Self { at_mem_cycle, chip, mode: FaultMode::MultiBank, permanent: true }
    }
}

/// An immutable, time-ordered fault schedule for one simulation run.
///
/// The default (empty) schedule is the healthy baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    faults: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// Builds a schedule, sorting the faults by injection cycle (stable:
    /// same-cycle faults keep their given order).
    pub fn new(mut faults: Vec<ScheduledFault>) -> Self {
        faults.sort_by_key(|f| f.at_mem_cycle);
        Self { faults }
    }

    /// Convenience: a single permanent chip failure at `at_mem_cycle`.
    pub fn chip_failure_at(at_mem_cycle: u64, chip: usize) -> Self {
        Self::new(vec![ScheduledFault::chip_failure(at_mem_cycle, chip)])
    }

    /// The scheduled faults in injection order.
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }

    /// True when nothing is scheduled (the healthy baseline).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The first injection cycle strictly after `cycle`, if any — the
    /// event-horizon fast path uses this to cap clock jumps so no
    /// injection point is skipped over.
    pub fn next_after(&self, cycle: u64) -> Option<u64> {
        // The list is sorted, so the first qualifying entry is the minimum.
        self.faults.iter().map(|f| f.at_mem_cycle).find(|&at| at > cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_sorts_and_queries() {
        let s = FaultSchedule::new(vec![
            ScheduledFault::chip_failure(500, 1),
            ScheduledFault::chip_failure(100, 8),
            ScheduledFault::chip_failure(300, 3),
        ]);
        let cycles: Vec<u64> = s.faults().iter().map(|f| f.at_mem_cycle).collect();
        assert_eq!(cycles, vec![100, 300, 500]);
        assert_eq!(s.next_after(0), Some(100));
        assert_eq!(s.next_after(100), Some(300), "strictly after");
        assert_eq!(s.next_after(499), Some(500));
        assert_eq!(s.next_after(500), None);
        assert!(!s.is_empty());
    }

    #[test]
    fn default_schedule_is_healthy() {
        let s = FaultSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.next_after(0), None);
        assert_eq!(s, FaultSchedule::new(Vec::new()));
    }

    #[test]
    fn chip_failure_descriptor_defeats_secded() {
        let f = ScheduledFault::chip_failure(42, 3);
        assert_eq!(f.chip, 3);
        assert!(f.permanent);
        assert!(f.mode.defeats_secded(), "a whole-chip outage must overwhelm SECDED");
    }
}
