//! Quick calibration probe for the Figure 11 ratios.
use synergy_faultsim::*;

fn main() {
    let model = FaultModel::sridharan();
    let params = SimParams { devices: 20_000_000, ..Default::default() };
    let secded = simulate(EccPolicy::Secded, &model, &params);
    let chipkill = simulate(EccPolicy::Chipkill, &model, &params);
    let synergy = simulate(EccPolicy::Synergy, &model, &params);
    let ivec = simulate(EccPolicy::Ivec, &model, &params);
    for (name, r) in [("SECDED", &secded), ("Chipkill", &chipkill), ("Synergy", &synergy), ("IVEC", &ivec)] {
        println!("{name:10} p={:.3e} failures={} with_faults={}", r.failure_probability, r.failures, r.devices_with_faults);
    }
    println!("chipkill improvement over secded: {:.1}x", chipkill.improvement_over(&secded).recip().recip());
    println!("secded/chipkill = {:.1}", secded.failure_probability / chipkill.failure_probability);
    println!("secded/synergy  = {:.1}", secded.failure_probability / synergy.failure_probability);
    println!("secded/ivec     = {:.1}", secded.failure_probability / ivec.failure_probability);
    println!("chipkill/synergy= {:.1}", chipkill.failure_probability / synergy.failure_probability);
}
