//! Per-workload presets named after the paper's 29 benchmarks + 6 mixes.
//!
//! Parameters (intensity, read fraction, footprint, pattern) are set from
//! the published memory-behaviour characteristics of each benchmark
//! (SPEC2006 characterization studies and the GAP suite paper), chosen to
//! reproduce the relative properties the evaluation depends on. Notably:
//!
//! * `mcf`, `libquantum`, `lbm`, `milc` and the GAP kernels are strongly
//!   memory-bound (APKI ≥ 20) — these show the largest SYNERGY speedups.
//! * The `*-web` graph workloads have footprints whose *encryption-counter
//!   working set* (footprint / 8) overflows the 8 MB LLC across 4 cores —
//!   reproducing Figure 8's anomaly where caching counters in the LLC
//!   (SGX_O) hurts rather than helps.
//! * Low-APKI workloads (`sjeng`, `perlbench`, …) are bandwidth-insensitive
//!   and show no benefit, as §VI-A notes.

use crate::{AccessPattern, Suite, WorkloadSpec};

const MB: u64 = 1 << 20;

macro_rules! w {
    ($name:literal, $suite:expr, $apki:expr, $rf:expr, $fp_mb:expr, $pat:expr) => {
        WorkloadSpec {
            name: $name,
            suite: $suite,
            apki: $apki,
            read_fraction: $rf,
            footprint_bytes: $fp_mb * MB,
            pattern: $pat,
        }
    };
}

/// The 29 single-benchmark workloads of Figure 8 (23 SPEC2006 + 6 GAP).
pub fn all() -> Vec<WorkloadSpec> {
    use AccessPattern::*;
    use Suite::*;
    vec![
        // --- SPECint (memory-intensive subset) ---
        w!("mcf", SpecInt, 30.0, 0.80, 48, PointerChase { cluster: 4, hot_fraction: 0.75, hot_bytes: 12 * MB }),
        w!("libquantum", SpecInt, 25.0, 0.75, 32, Streaming { stride: 64 }),
        w!("omnetpp", SpecInt, 12.0, 0.70, 32, Random { cluster: 4, hot_fraction: 0.75, hot_bytes: 12 * MB }),
        w!("astar", SpecInt, 8.0, 0.75, 16, PointerChase { cluster: 4, hot_fraction: 0.75, hot_bytes: 12 * MB }),
        w!("xalancbmk", SpecInt, 7.0, 0.72, 16, Random { cluster: 4, hot_fraction: 0.70, hot_bytes: 6 * MB }),
        w!("gcc", SpecInt, 5.0, 0.70, 8, Random { cluster: 8, hot_fraction: 0.65, hot_bytes: 4 * MB }),
        w!("bzip2", SpecInt, 4.0, 0.68, 8, Streaming { stride: 128 }),
        w!("gobmk", SpecInt, 2.0, 0.70, 4, Random { cluster: 4, hot_fraction: 0.7, hot_bytes: 2 * MB }),
        w!("hmmer", SpecInt, 2.0, 0.60, 2, Streaming { stride: 64 }),
        w!("h264ref", SpecInt, 1.8, 0.65, 2, Streaming { stride: 64 }),
        w!("sjeng", SpecInt, 1.5, 0.70, 4, Random { cluster: 4, hot_fraction: 0.7, hot_bytes: 2 * MB }),
        w!("perlbench", SpecInt, 1.2, 0.70, 4, Random { cluster: 4, hot_fraction: 0.7, hot_bytes: 2 * MB }),
        // --- SPECfp (memory-intensive subset) ---
        w!("lbm", SpecFp, 30.0, 0.55, 64, Streaming { stride: 128 }),
        w!("milc", SpecFp, 22.0, 0.70, 48, Random { cluster: 8, hot_fraction: 0.70, hot_bytes: 12 * MB }),
        w!("soplex", SpecFp, 20.0, 0.75, 32, Random { cluster: 8, hot_fraction: 0.70, hot_bytes: 10 * MB }),
        w!("GemsFDTD", SpecFp, 18.0, 0.70, 48, Streaming { stride: 64 }),
        w!("leslie3d", SpecFp, 15.0, 0.70, 32, Streaming { stride: 64 }),
        w!("bwaves", SpecFp, 14.0, 0.72, 48, Streaming { stride: 64 }),
        w!("sphinx3", SpecFp, 12.0, 0.80, 16, Streaming { stride: 64 }),
        w!("zeusmp", SpecFp, 8.0, 0.70, 24, Streaming { stride: 256 }),
        w!("cactusADM", SpecFp, 6.0, 0.65, 16, Streaming { stride: 128 }),
        w!("wrf", SpecFp, 6.0, 0.70, 16, Streaming { stride: 64 }),
        w!("dealII", SpecFp, 3.0, 0.75, 8, Random { cluster: 8, hot_fraction: 0.7, hot_bytes: 3 * MB }),
        // --- GAP graph kernels (PageRank / Connected Components /
        //     Betweenness Centrality on twitter and web graphs) ---
        w!("pr-twi", Gap, 35.0, 0.80, 64, Graph { stream_fraction: 0.40, core_fraction: 0.30, core_bytes: 2 * MB, hot_fraction: 0.60, hot_bytes: 10 * MB }),
        w!("pr-web", Gap, 30.0, 0.70, 1536, Graph { stream_fraction: 0.65, core_fraction: 0.45, core_bytes: MB * 3 / 2, hot_fraction: 0.0, hot_bytes: 0 }),
        w!("cc-twi", Gap, 30.0, 0.85, 64, Graph { stream_fraction: 0.40, core_fraction: 0.30, core_bytes: 2 * MB, hot_fraction: 0.60, hot_bytes: 10 * MB }),
        w!("cc-web", Gap, 28.0, 0.75, 1536, Graph { stream_fraction: 0.65, core_fraction: 0.45, core_bytes: MB * 3 / 2, hot_fraction: 0.0, hot_bytes: 0 }),
        w!("bc-twi", Gap, 32.0, 0.75, 64, Graph { stream_fraction: 0.35, core_fraction: 0.30, core_bytes: 2 * MB, hot_fraction: 0.60, hot_bytes: 10 * MB }),
        w!("bc-web", Gap, 28.0, 0.70, 1536, Graph { stream_fraction: 0.65, core_fraction: 0.45, core_bytes: MB * 3 / 2, hot_fraction: 0.0, hot_bytes: 0 }),
    ]
}

/// Looks up a single workload by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The memory-intensive subset (> 10 APKI) the paper's headline numbers
/// average over.
pub fn memory_intensive() -> Vec<WorkloadSpec> {
    all().into_iter().filter(|w| w.apki >= 10.0).collect()
}

/// A 4-benchmark mixed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MixSpec {
    /// Mix name as shown on the Figure 8 x-axis.
    pub name: &'static str,
    /// The four member benchmarks (one per core).
    pub members: [&'static str; 4],
}

/// The 6 mixed workloads (random 4-benchmark combinations, §V).
pub fn mixes() -> Vec<MixSpec> {
    vec![
        MixSpec { name: "mix1", members: ["mcf", "lbm", "libquantum", "omnetpp"] },
        MixSpec { name: "mix2", members: ["milc", "soplex", "astar", "gcc"] },
        MixSpec { name: "mix3", members: ["GemsFDTD", "leslie3d", "xalancbmk", "bzip2"] },
        MixSpec { name: "mix4", members: ["pr-twi", "mcf", "sphinx3", "bwaves"] },
        MixSpec { name: "mix5", members: ["lbm", "milc", "zeusmp", "cactusADM"] },
        MixSpec { name: "mix6", members: ["libquantum", "soplex", "omnetpp", "wrf"] },
    ]
}

/// Resolves a mix into its member workload specs.
///
/// # Panics
///
/// Panics if the mix references an unknown benchmark (a bug in the tables
/// above, caught by tests).
pub fn mix_members(mix: &MixSpec) -> Vec<WorkloadSpec> {
    mix.members
        .iter()
        .map(|m| by_name(m).unwrap_or_else(|| panic!("mix member {m} not found")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_nine_workloads() {
        assert_eq!(all().len(), 29);
        let gap = all().iter().filter(|w| w.suite == Suite::Gap).count();
        assert_eq!(gap, 6);
        let int = all().iter().filter(|w| w.suite == Suite::SpecInt).count();
        let fp = all().iter().filter(|w| w.suite == Suite::SpecFp).count();
        assert_eq!(int + fp, 23);
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = all().iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn lookup_works() {
        assert!(by_name("mcf").is_some());
        assert!(by_name("pr-web").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn memory_intensive_subset() {
        let mi = memory_intensive();
        assert!(mi.len() >= 12, "got {}", mi.len());
        assert!(mi.iter().all(|w| w.apki >= 10.0));
        assert!(mi.iter().any(|w| w.name == "mcf"));
        assert!(!mi.iter().any(|w| w.name == "sjeng"));
    }

    #[test]
    fn all_mixes_resolve() {
        let mixes = mixes();
        assert_eq!(mixes.len(), 6);
        for m in &mixes {
            let members = mix_members(m);
            assert_eq!(members.len(), 4);
        }
    }

    #[test]
    fn web_graphs_have_llc_overflowing_counter_working_sets() {
        // The property behind the Figure 8 anomaly: counter working set
        // (footprint / 8) across 4 cores must exceed the 8 MB LLC for the
        // web datasets but not by as much for twitter.
        for name in ["pr-web", "cc-web", "bc-web"] {
            let w = by_name(name).unwrap();
            let counter_ws_4core = 4 * w.footprint_bytes / 8;
            assert!(counter_ws_4core > 8 * MB * 4, "{name}");
        }
        for name in ["pr-twi", "cc-twi", "bc-twi"] {
            let w = by_name(name).unwrap();
            assert!(w.footprint_bytes < by_name("pr-web").unwrap().footprint_bytes);
        }
    }

    #[test]
    fn sane_parameter_ranges() {
        for w in all() {
            assert!(w.apki > 0.0 && w.apki < 100.0, "{}", w.name);
            assert!(w.read_fraction > 0.3 && w.read_fraction <= 1.0, "{}", w.name);
            assert!(w.footprint_bytes >= MB, "{}", w.name);
        }
    }
}
