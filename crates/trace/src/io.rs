//! USIMM-style trace file I/O.
//!
//! USIMM consumes text traces with one memory operation per line:
//!
//! ```text
//! <gap> R|W 0x<address> [D]
//! ```
//!
//! where `gap` is the number of non-memory instructions preceding the
//! access and the optional trailing `D` (our extension) marks a load that
//! depends on the previous load. This module lets the synthetic generators
//! interoperate with that format: export a preset workload to a file, or
//! drive the simulator from traces produced elsewhere.
//!
//! ```
//! use synergy_trace::{io as trace_io, presets, TraceGen};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut gen = TraceGen::new(presets::by_name("mcf").unwrap(), 1);
//! let records: Vec<_> = (0..100).map(|_| gen.next_record()).collect();
//!
//! let mut buf = Vec::new();
//! trace_io::write_trace(&mut buf, &records)?;
//! let parsed = trace_io::read_trace(&buf[..])?;
//! assert_eq!(parsed, records);
//! # Ok(())
//! # }
//! ```

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::TraceRecord;

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed line, with its 1-based line number and contents.
    Parse {
        /// Line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl core::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Parse { line, text } => {
                write!(f, "malformed trace line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes records in USIMM text format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, records: &[TraceRecord]) -> io::Result<()> {
    for r in records {
        let op = if r.is_write { 'W' } else { 'R' };
        if r.dependent {
            writeln!(w, "{} {} {:#x} D", r.gap, op, r.addr)?;
        } else {
            writeln!(w, "{} {} {:#x}", r.gap, op, r.addr)?;
        }
    }
    Ok(())
}

/// Parses a USIMM text trace. Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] for malformed lines and
/// [`TraceIoError::Io`] for reader failures.
pub fn read_trace<R: Read>(r: R) -> Result<Vec<TraceRecord>, TraceIoError> {
    let reader = BufReader::new(r);
    let mut out = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        out.push(parse_line(text).ok_or_else(|| TraceIoError::Parse {
            line: i + 1,
            text: text.to_string(),
        })?);
    }
    Ok(out)
}

fn parse_line(text: &str) -> Option<TraceRecord> {
    let mut parts = text.split_whitespace();
    let gap: u32 = parts.next()?.parse().ok()?;
    let is_write = match parts.next()? {
        "R" | "r" => false,
        "W" | "w" => true,
        _ => return None,
    };
    let addr_text = parts.next()?;
    let addr = if let Some(hex) = addr_text.strip_prefix("0x").or_else(|| addr_text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()?
    } else {
        addr_text.parse().ok()?
    };
    let dependent = match parts.next() {
        None => false,
        Some("D") | Some("d") => true,
        Some(_) => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(TraceRecord { gap, is_write, addr: addr & !63, dependent })
}

/// A replayable in-memory trace that loops forever — drop-in for a
/// [`crate::TraceGen`] when driving the simulator from a file.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    records: Vec<TraceRecord>,
    pos: usize,
}

impl ReplayTrace {
    /// Wraps parsed records.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn new(records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "replay trace needs at least one record");
        Self { records, pos: 0 }
    }

    /// Loads a trace from a reader.
    ///
    /// # Errors
    ///
    /// Propagates parse/I/O errors; an empty trace is a parse error.
    pub fn from_reader<R: Read>(r: R) -> Result<Self, TraceIoError> {
        let records = read_trace(r)?;
        if records.is_empty() {
            return Err(TraceIoError::Parse { line: 0, text: "empty trace".into() });
        }
        Ok(Self::new(records))
    }

    /// Number of distinct records before the trace loops.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Always false (construction requires at least one record).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Next record, looping at the end.
    pub fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(gap: u32, is_write: bool, addr: u64, dependent: bool) -> TraceRecord {
        TraceRecord { gap, is_write, addr, dependent }
    }

    #[test]
    fn roundtrip() {
        let records = vec![
            rec(10, false, 0x1000, false),
            rec(0, true, 0x40, false),
            rec(333, false, 0xdead_bec0, true),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        assert_eq!(read_trace(&buf[..]).unwrap(), records);
    }

    #[test]
    fn parses_decimal_and_hex_and_comments() {
        let text = "# a comment\n5 R 0x80\n\n7 W 128\n2 r 0X40 d\n";
        let records = read_trace(text.as_bytes()).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], rec(5, false, 0x80, false));
        assert_eq!(records[1], rec(7, true, 128, false));
        assert_eq!(records[2], rec(2, false, 0x40, true));
    }

    #[test]
    fn addresses_are_line_aligned_on_read() {
        let records = read_trace("1 R 0x47\n".as_bytes()).unwrap();
        assert_eq!(records[0].addr, 0x40);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        for bad in ["R 0x40", "1 X 0x40", "1 R zz", "1 R 0x40 Q", "1 R 0x40 D extra"] {
            let text = format!("1 R 0x40\n{bad}\n");
            match read_trace(text.as_bytes()) {
                Err(TraceIoError::Parse { line, .. }) => assert_eq!(line, 2, "{bad}"),
                other => panic!("{bad}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn replay_loops() {
        let mut t = ReplayTrace::new(vec![rec(1, false, 0, false), rec(2, true, 64, false)]);
        assert_eq!(t.len(), 2);
        let a = t.next_record();
        let b = t.next_record();
        let c = t.next_record();
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_trace_rejected() {
        assert!(matches!(
            ReplayTrace::from_reader("# nothing\n".as_bytes()),
            Err(TraceIoError::Parse { .. })
        ));
    }

    #[test]
    fn generator_export_import_roundtrip() {
        use crate::{presets, TraceGen};
        let mut gen = TraceGen::new(presets::by_name("omnetpp").unwrap(), 5);
        let records: Vec<_> = (0..500).map(|_| gen.next_record()).collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &records).unwrap();
        let replay = ReplayTrace::from_reader(&buf[..]).unwrap();
        assert_eq!(replay.len(), 500);
    }
}
