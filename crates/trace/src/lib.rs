//! Synthetic workload traces — the SPEC2006 / GAP substitute.
//!
//! The paper drives USIMM with PinPoint slices (1 billion instructions) of
//! 23 memory-intensive SPEC2006 benchmarks and 6 GAP graph kernels, run in
//! rate mode on 4 cores, plus 6 random 4-benchmark mixes. Those traces are
//! proprietary, so this crate generates *synthetic equivalents*: each paper
//! workload becomes a parameterized generator whose memory intensity
//! (accesses per kilo-instruction), read/write split, footprint, spatial
//! locality and load-dependence are set to reproduce the *relative*
//! behaviours the paper's results depend on:
//!
//! * bandwidth demand (drives the secure-execution slowdown),
//! * counter-working-set size vs the 128 KB metadata cache (drives the
//!   SGX vs SGX_O gap),
//! * LLC contention between counters and data for the `*-web` graph
//!   workloads (drives the Figure 8 anomaly where SGX_O < SGX), and
//! * row-buffer locality (drives DRAM efficiency).
//!
//! Every design under comparison consumes the *same* trace stream, so the
//! relative metrics the paper reports (normalized IPC, traffic bloat, EDP)
//! are meaningful even though the absolute traces are synthetic.
//!
//! # Example
//!
//! ```
//! use synergy_trace::{presets, TraceGen};
//!
//! let spec = presets::by_name("mcf").expect("mcf is a preset");
//! let mut gen = TraceGen::new(spec.clone(), 42);
//! let rec = gen.next_record();
//! assert!(rec.addr % 64 == 0, "addresses are line-aligned");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod io;
pub mod presets;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cacheline size assumed by the generators.
pub const LINE_BYTES: u64 = 64;

/// One trace record: a burst of non-memory instructions followed by one
/// memory access (the USIMM trace format, in spirit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions retired before this access.
    pub gap: u32,
    /// Whether the access is a write (store) rather than a read (load).
    pub is_write: bool,
    /// Line-aligned physical address.
    pub addr: u64,
    /// True when the access depends on the previous load's value
    /// (pointer chasing): the core cannot issue it until that load returns.
    pub dependent: bool,
}

/// Spatial access pattern of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential streaming through the footprint (e.g. libquantum, lbm).
    Streaming {
        /// Stride between consecutive accesses in bytes.
        stride: u64,
    },
    /// Random block accesses over the footprint (e.g. omnetpp).
    ///
    /// Real irregular workloads show *spatial* locality (objects span
    /// several cachelines — `cluster` consecutive lines per visited block)
    /// and *temporal* locality (a hot working set): with probability
    /// `hot_fraction` the block is drawn from the first `hot_bytes` of the
    /// footprint, else uniformly from the whole footprint. The hot-set
    /// size is what positions a workload in the cache hierarchy: its
    /// *counter* working set (`hot_bytes / 8`) against the 128 KB
    /// dedicated metadata cache and the 8 MB LLC decides the SGX vs SGX_O
    /// vs Synergy behaviour.
    Random {
        /// Consecutive lines touched per visited block.
        cluster: u64,
        /// Probability of hitting the hot working set.
        hot_fraction: f64,
        /// Size of the hot working set in bytes.
        hot_bytes: u64,
    },
    /// Dependent random traversal — each block's first load feeds the next
    /// block address (e.g. mcf). Same locality knobs as [`Self::Random`].
    PointerChase {
        /// Consecutive lines touched per visited node.
        cluster: u64,
        /// Probability of hitting the hot working set.
        hot_fraction: f64,
        /// Size of the hot working set in bytes.
        hot_bytes: u64,
    },
    /// Graph-kernel mix: streaming edge scans interleaved with vertex
    /// accesses over a two-tier vertex popularity model (GAP pr/cc/bc).
    ///
    /// Vertex accesses hit a small *core* of super-hot vertices (the
    /// highest-degree hubs — this is what the LLC keeps resident) with
    /// probability `core_fraction`, a larger warm tier of `hot_bytes` with
    /// probability `hot_fraction`, and the uniform tail otherwise. The
    /// `*-web` datasets get a warm tier far beyond the LLC: under SGX_O
    /// its counter stream floods the LLC and evicts the core vertices —
    /// Figure 8's anomaly.
    Graph {
        /// Fraction of accesses that are streaming edge-list reads.
        stream_fraction: f64,
        /// Probability a vertex access hits the super-hot core.
        core_fraction: f64,
        /// Size of the super-hot vertex core in bytes.
        core_bytes: u64,
        /// Probability a vertex access hits the warm tier.
        hot_fraction: f64,
        /// Size of the warm vertex tier in bytes.
        hot_bytes: u64,
    },
}

/// Full parameterization of one synthetic workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (the paper's benchmark name).
    pub name: &'static str,
    /// Suite for grouping results, as in Figure 8.
    pub suite: Suite,
    /// Memory accesses per 1000 instructions (LLC-miss traffic intensity).
    pub apki: f64,
    /// Fraction of accesses that are reads.
    pub read_fraction: f64,
    /// Touched memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Spatial pattern.
    pub pattern: AccessPattern,
}

/// Benchmark suite tags used for the grouped geometric means in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC2006 integer.
    SpecInt,
    /// SPEC2006 floating point.
    SpecFp,
    /// GAP graph kernels.
    Gap,
    /// 4-benchmark mixed workloads.
    Mix,
}

impl core::fmt::Display for Suite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Suite::SpecInt => "SPECint",
            Suite::SpecFp => "SPECfp",
            Suite::Gap => "GAP",
            Suite::Mix => "MIX",
        };
        f.write_str(s)
    }
}

/// A deterministic, infinite trace generator for one workload on one core.
#[derive(Debug, Clone)]
pub struct TraceGen {
    spec: WorkloadSpec,
    rng: StdRng,
    /// Current position for streaming patterns.
    stream_pos: u64,
    /// Next line within the current random/pointer-chase block.
    burst_pos: u64,
    /// Lines remaining in the current block.
    burst_left: u64,
    /// Base address offset (so rate-mode copies don't share data).
    base: u64,
}

impl TraceGen {
    /// Creates a generator with a deterministic seed.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        Self::with_base(spec, seed, 0)
    }

    /// Creates a generator whose addresses are offset by `base` bytes —
    /// used to give each rate-mode core a private copy of the footprint.
    pub fn with_base(spec: WorkloadSpec, seed: u64, base: u64) -> Self {
        let rng = StdRng::seed_from_u64(seed ^ 0x5DEECE66D);
        Self { spec, rng, stream_pos: 0, burst_pos: 0, burst_left: 0, base }
    }

    /// The workload parameterization.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Generates the next trace record.
    pub fn next_record(&mut self) -> TraceRecord {
        let mean_gap = (1000.0 / self.spec.apki).max(1.0);
        // Uniform around the mean keeps intensity exact in expectation
        // without the burstiness of heavy tails (PinPoint slices are
        // similarly smooth at the 1000-instruction scale).
        let gap = self.rng.gen_range(0.0..2.0 * mean_gap) as u32;
        let is_write = self.rng.gen_bool(1.0 - self.spec.read_fraction);
        let (line, dependent) = self.next_line();
        TraceRecord {
            gap,
            is_write,
            addr: self.base + line * LINE_BYTES,
            dependent: dependent && !is_write,
        }
    }

    fn next_line(&mut self) -> (u64, bool) {
        let lines = self.spec.footprint_lines();
        match self.spec.pattern {
            AccessPattern::Streaming { stride } => {
                let line = self.stream_pos;
                self.stream_pos = (self.stream_pos + (stride / LINE_BYTES).max(1)) % lines;
                (line, false)
            }
            AccessPattern::Random { cluster, hot_fraction, hot_bytes } => {
                let _ = self.advance_block(lines, cluster, hot_fraction, hot_bytes);
                (self.take_from_block(lines), false)
            }
            AccessPattern::PointerChase { cluster, hot_fraction, hot_bytes } => {
                // The traversal is *dependent*: the first load of each node
                // (block) is fed by the previous one, so MLP collapses;
                // the node's remaining lines issue in its shadow.
                let fresh = self.advance_block(lines, cluster, hot_fraction, hot_bytes);
                (self.take_from_block(lines), fresh)
            }
            AccessPattern::Graph {
                stream_fraction,
                core_fraction,
                core_bytes,
                hot_fraction,
                hot_bytes,
            } => {
                if self.rng.gen_bool(stream_fraction) {
                    let line = self.stream_pos;
                    self.stream_pos = (self.stream_pos + 1) % lines;
                    (line, false)
                } else if self.rng.gen_bool(core_fraction.clamp(0.0, 1.0)) {
                    let core_lines = (core_bytes / LINE_BYTES).clamp(1, lines);
                    (self.rng.gen_range(0..core_lines), true)
                } else {
                    // Renormalize: hot_fraction is relative to non-core
                    // vertex accesses.
                    (self.hot_or_cold_line(lines, hot_fraction, hot_bytes), true)
                }
            }
        }
    }

    /// Starts a new block when the current one is exhausted. Returns true
    /// when a new block was selected.
    fn advance_block(&mut self, lines: u64, cluster: u64, hot_fraction: f64, hot_bytes: u64) -> bool {
        if self.burst_left > 0 {
            return false;
        }
        let cluster = cluster.max(1).min(lines);
        let first = self.hot_or_cold_line(lines, hot_fraction, hot_bytes);
        self.burst_pos = (first / cluster) * cluster;
        self.burst_left = cluster;
        true
    }

    /// Draws a line from the hot working set with probability
    /// `hot_fraction`, otherwise uniformly from the whole footprint.
    fn hot_or_cold_line(&mut self, lines: u64, hot_fraction: f64, hot_bytes: u64) -> u64 {
        let hot_lines = (hot_bytes / LINE_BYTES).clamp(1, lines);
        if self.rng.gen_bool(hot_fraction.clamp(0.0, 1.0)) {
            self.rng.gen_range(0..hot_lines)
        } else {
            self.rng.gen_range(0..lines)
        }
    }

    fn take_from_block(&mut self, lines: u64) -> u64 {
        let line = self.burst_pos % lines;
        self.burst_pos += 1;
        self.burst_left -= 1;
        line
    }

}

impl WorkloadSpec {
    /// Footprint in cachelines (at least 1).
    pub fn footprint_lines(&self) -> u64 {
        (self.footprint_bytes / LINE_BYTES).max(1)
    }
}

/// A 4-core rate-mode (or mixed) workload: one generator per core.
#[derive(Debug, Clone)]
pub struct MultiCoreTrace {
    generators: Vec<TraceGen>,
}

impl MultiCoreTrace {
    /// Rate mode: `cores` copies of the same workload, each on a private
    /// copy of the footprint (as the paper runs SPEC in rate mode).
    pub fn rate_mode(spec: &WorkloadSpec, cores: usize, seed: u64) -> Self {
        let generators = (0..cores)
            .map(|c| {
                // Give each copy a disjoint address region.
                let base = c as u64 * spec.footprint_bytes.next_power_of_two();
                TraceGen::with_base(spec.clone(), seed + c as u64 * 7919, base)
            })
            .collect();
        Self { generators }
    }

    /// Mixed mode: one distinct workload per core.
    pub fn mixed(specs: &[WorkloadSpec], seed: u64) -> Self {
        let mut offset = 0u64;
        let generators = specs
            .iter()
            .enumerate()
            .map(|(c, spec)| {
                let base = offset;
                offset += spec.footprint_bytes.next_power_of_two();
                TraceGen::with_base(spec.clone(), seed + c as u64 * 104729, base)
            })
            .collect();
        Self { generators }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.generators.len()
    }

    /// Next record for `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn next_record(&mut self, core: usize) -> TraceRecord {
        self.generators[core].next_record()
    }

    /// The per-core workload specs.
    pub fn specs(&self) -> Vec<&WorkloadSpec> {
        self.generators.iter().map(|g| g.spec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(pattern: AccessPattern) -> WorkloadSpec {
        WorkloadSpec {
            name: "test",
            suite: Suite::SpecInt,
            apki: 20.0,
            read_fraction: 0.75,
            footprint_bytes: 1 << 20,
            pattern,
        }
    }

    #[test]
    fn determinism_given_seed() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut a = TraceGen::new(s.clone(), 7);
        let mut b = TraceGen::new(s, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut a = TraceGen::new(s.clone(), 1);
        let mut b = TraceGen::new(s, 2);
        let same = (0..100).filter(|_| a.next_record() == b.next_record()).count();
        assert!(same < 10);
    }

    #[test]
    fn intensity_matches_apki() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut g = TraceGen::new(s, 3);
        let n = 20_000;
        let total_insts: u64 = (0..n).map(|_| g.next_record().gap as u64 + 1).sum();
        let apki = n as f64 * 1000.0 / total_insts as f64;
        assert!((apki - 20.0).abs() < 1.5, "measured apki {apki}");
    }

    #[test]
    fn read_fraction_respected() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut g = TraceGen::new(s, 4);
        let writes = (0..10_000).filter(|_| g.next_record().is_write).count();
        let frac = writes as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn footprint_respected() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut g = TraceGen::new(s.clone(), 5);
        for _ in 0..10_000 {
            let r = g.next_record();
            assert!(r.addr < s.footprint_bytes);
            assert_eq!(r.addr % LINE_BYTES, 0);
        }
    }

    #[test]
    fn streaming_is_sequential() {
        let s = spec(AccessPattern::Streaming { stride: 64 });
        let mut g = TraceGen::new(s, 6);
        let mut prev = None;
        for _ in 0..100 {
            let r = g.next_record();
            if let Some(p) = prev {
                assert_eq!(r.addr, p + 64);
            }
            prev = Some(r.addr);
            assert!(!r.dependent);
        }
    }

    #[test]
    fn pointer_chase_reads_are_dependent() {
        let s = WorkloadSpec {
            read_fraction: 1.0,
            ..spec(AccessPattern::PointerChase { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 })
        };
        let mut g = TraceGen::new(s, 7);
        for _ in 0..100 {
            assert!(g.next_record().dependent);
        }
    }

    #[test]
    fn pointer_chase_cluster_marks_only_block_heads_dependent() {
        let s = WorkloadSpec {
            read_fraction: 1.0,
            ..spec(AccessPattern::PointerChase { cluster: 4, hot_fraction: 0.0, hot_bytes: 0 })
        };
        let mut g = TraceGen::new(s, 7);
        let recs: Vec<_> = (0..40).map(|_| g.next_record()).collect();
        let dependents = recs.iter().filter(|r| r.dependent).count();
        assert_eq!(dependents, 10, "one dependent head per 4-line block");
        // Lines within a block are consecutive.
        assert_eq!(recs[1].addr, recs[0].addr + 64);
        assert_eq!(recs[3].addr, recs[0].addr + 192);
    }

    #[test]
    fn random_cluster_improves_counter_line_reuse() {
        // Counter lines cover 8 consecutive data lines; a cluster of 4
        // guarantees ~4 accesses per counter-line visit.
        let clustered = spec(AccessPattern::Random { cluster: 8, hot_fraction: 0.0, hot_bytes: 0 });
        let mut g = TraceGen::new(clustered, 9);
        use std::collections::HashSet;
        let mut counter_lines = HashSet::new();
        for _ in 0..8000 {
            counter_lines.insert(g.next_record().addr / (64 * 8));
        }
        // 8000 accesses over 8-line blocks → about 1000 counter lines.
        assert!(counter_lines.len() < 1500, "{}", counter_lines.len());
    }

    #[test]
    fn hot_set_concentrates_accesses() {
        // 70% of accesses land in the 64 KB hot head of the 1 MB footprint.
        let hot = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.7, hot_bytes: 64 << 10 });
        let uniform = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let count_hot = |mut g: TraceGen| {
            (0..10_000).filter(|_| g.next_record().addr < (64 << 10)).count()
        };
        let in_hot = count_hot(TraceGen::new(hot, 3));
        let in_uni = count_hot(TraceGen::new(uniform, 3));
        // ~0.7 + 0.3/16 ≈ 0.72 vs 1/16 ≈ 0.0625.
        assert!(in_hot > 6500 && in_hot < 8000, "hot {in_hot}");
        assert!(in_uni < 1000, "uniform {in_uni}");
    }

    #[test]
    fn graph_vertex_accesses_prefer_hot_set() {
        let s = spec(AccessPattern::Graph {
            stream_fraction: 0.0,
            core_fraction: 0.3,
            core_bytes: 8 << 10,
            hot_fraction: 0.8,
            hot_bytes: 64 << 10,
        });
        let mut g = TraceGen::new(s.clone(), 8);
        let mut core = 0;
        let mut hot = 0;
        for _ in 0..20_000 {
            let a = g.next_record().addr;
            if a < (8 << 10) {
                core += 1;
            }
            if a < (64 << 10) {
                hot += 1;
            }
        }
        // core ≈ 0.3 + spillover from the hot tier (8 KB is 1/8 of 64 KB):
        // 0.3 + 0.7·0.8/8 ≈ 0.37; hot ≈ 0.3 + 0.7·(0.8 + 0.2/16) ≈ 0.87.
        assert!(core > 6000 && core < 9000, "core hits {core}");
        assert!(hot > 15_000, "hot-line hits: {hot} / 20000");
    }

    #[test]
    fn rate_mode_cores_use_disjoint_regions() {
        let s = spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 });
        let mut mc = MultiCoreTrace::rate_mode(&s, 4, 9);
        let fp = s.footprint_bytes.next_power_of_two();
        for core in 0..4 {
            for _ in 0..100 {
                let r = mc.next_record(core);
                assert!(r.addr >= core as u64 * fp);
                assert!(r.addr < core as u64 * fp + s.footprint_bytes);
            }
        }
    }

    #[test]
    fn mixed_mode_uses_each_spec() {
        let specs = vec![
            spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 }),
            WorkloadSpec { name: "b", ..spec(AccessPattern::Streaming { stride: 64 }) },
            WorkloadSpec { name: "c", ..spec(AccessPattern::Random { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 }) },
            WorkloadSpec { name: "d", ..spec(AccessPattern::PointerChase { cluster: 1, hot_fraction: 0.0, hot_bytes: 0 }) },
        ];
        let mc = MultiCoreTrace::mixed(&specs, 11);
        assert_eq!(mc.cores(), 4);
        let names: Vec<&str> = mc.specs().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["test", "b", "c", "d"]);
    }
}
