//! # SYNERGY — secure-memory / reliability co-design for ECC-DIMMs
//!
//! This is the umbrella crate of a from-scratch Rust reproduction of
//! *SYNERGY: Rethinking Secure-Memory Design for Error-Correcting Memories*
//! (HPCA 2018). It re-exports every subsystem crate so downstream users can
//! depend on a single crate:
//!
//! * [`crypto`] — AES-128, GHASH/GMAC, Carter–Wegman MACs, counter-mode
//!   encryption.
//! * [`ecc`] — SECDED (Hsiao 72,64), Reed–Solomon Chipkill, RAID-3 chip
//!   parity.
//! * [`dram`] — cycle-level DDR3 memory-system simulator (USIMM-style).
//! * [`cache`] — set-associative cache models (LLC, metadata cache).
//! * [`trace`] — synthetic SPEC2006/GAP-like workload trace generators.
//! * [`secure`] — secure-memory designs: counters, Bonsai counter tree,
//!   MAC tree, and the access-expansion engines for SGX, SGX_O, Synergy,
//!   IVEC, LOT-ECC and Non-Secure.
//! * [`faultsim`] — Monte-Carlo DRAM reliability simulator with the
//!   Sridharan field-study fault model.
//! * [`campaign`] — differential fault-injection campaign: the analytic
//!   reliability verdicts cross-checked against the functional SECDED /
//!   Chipkill / SYNERGY recovery pipelines, with replayable reproducers
//!   for any disagreement. Also home of the generic checkpointable
//!   [`JobFabric`](campaign::JobFabric).
//! * [`fleet`] — fleet-scale lifetime reliability: N DIMMs over a T-year
//!   horizon on the job fabric, with per-design availability / SDC / DUE
//!   / degraded-slowdown curves.
//! * [`obs`] — telemetry: log-bucketed latency histograms, the named
//!   metric registry, request-lifecycle span tracing, JSON/CSV export.
//! * [`core`] — the SYNERGY functional memory (MAC-in-ECC-chip co-location,
//!   RAID-3 reconstruction engine, tree-integrated error correction) and the
//!   full-system performance simulator.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use synergy::core::memory::{SynergyMemory, SynergyMemoryConfig};
//! use synergy::crypto::CacheLine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A functional SYNERGY-protected memory of 1 MiB.
//! let mut mem = SynergyMemory::new(SynergyMemoryConfig::with_capacity(1 << 20))?;
//! let line = CacheLine::from_bytes([0xAB; 64]);
//! mem.write_line(0x4000, &line)?;
//!
//! // A whole DRAM chip fails...
//! mem.inject_chip_error(0x4000, 3);
//!
//! // ...and the read still returns the correct data, transparently.
//! let out = mem.read_line(0x4000)?;
//! assert_eq!(out.data, line);
//! assert!(out.corrected);
//! # Ok(())
//! # }
//! ```

pub use synergy_cache as cache;
pub use synergy_campaign as campaign;
pub use synergy_core as core;
pub use synergy_crypto as crypto;
pub use synergy_dram as dram;
pub use synergy_ecc as ecc;
pub use synergy_faultsim as faultsim;
pub use synergy_fleet as fleet;
pub use synergy_obs as obs;
pub use synergy_secure as secure;
pub use synergy_trace as trace;
